#include "engine/detector.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

#include "engine/snapshot.h"
#include "engine/trace.h"

namespace rfidcep::engine {

using events::Bindings;
using events::EventInstance;
using events::EventInstancePtr;
using events::ExprOp;
using events::Observation;

std::string_view ParameterContextName(ParameterContext context) {
  switch (context) {
    case ParameterContext::kChronicle:
      return "chronicle";
    case ParameterContext::kRecent:
      return "recent";
    case ParameterContext::kContinuous:
      return "continuous";
    case ParameterContext::kCumulative:
      return "cumulative";
    case ParameterContext::kUnrestricted:
      return "unrestricted";
  }
  return "?";
}

namespace {

// Bucket for entries whose join variables are not all bound; always
// scanned in addition to the exact bucket.
constexpr uint64_t kWildcardKey = events::kWildcardJoinKey;

// Every complete key maps here under debug_force_join_collisions.
constexpr uint64_t kCollisionBucket = 0x636f6c6cull;

Bindings MergedOrDie(const Bindings& a, const Bindings& b) {
  Bindings tmp = a;
  bool ok = tmp.Merge(b);
  assert(ok && "pairing predicate must have verified unification");
  (void)ok;
  return tmp;
}

}  // namespace

DetectorInstruments MakeDetectorInstruments(common::MetricsRegistry* registry,
                                            int shard_id,
                                            const EventGraph& graph) {
  const std::string shard = "{shard=\"" + std::to_string(shard_id) + "\"}";
  DetectorInstruments m;
  m.primitive_matches =
      registry->GetCounter("detector_primitive_matches_total" + shard);
  m.instances_produced =
      registry->GetCounter("detector_instances_produced_total" + shard);
  m.rule_matches = registry->GetCounter("detector_rule_matches_total" + shard);
  m.pseudo_scheduled =
      registry->GetCounter("detector_pseudo_scheduled_total" + shard);
  m.pseudo_fired = registry->GetCounter("detector_pseudo_fired_total" + shard);
  m.pseudo_queue_depth =
      registry->GetGauge("detector_pseudo_queue_depth" + shard);
  m.pseudo_queue_peak =
      registry->GetGauge("detector_pseudo_queue_peak" + shard);
  m.pseudo_lag_us = registry->GetHistogram("detector_pseudo_lag_us" + shard);
  m.dispatch_fullscan =
      registry->GetCounter("rfidcep_dispatch_fullscan_total" + shard);
  m.node_firings.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const GraphNode& node : graph.nodes()) {
    m.node_firings.push_back(registry->GetCounter(
        "graph_node_firings_total{shard=\"" + std::to_string(shard_id) +
        "\",node=\"" + std::to_string(node.id) + "\",op=\"" +
        std::string(events::ExprOpName(node.op)) + "\"}"));
  }
  return m;
}

Detector::Detector(const EventGraph* graph, const events::Environment* env,
                   DetectorOptions options, RuleMatchCallback on_match)
    : graph_(graph),
      env_(env),
      options_(options),
      on_match_(std::move(on_match)),
      states_(graph->num_nodes()),
      produced_per_node_(graph->num_nodes(), 0),
      seqplus_self_(graph->num_nodes(), false) {
  // Primitive dispatch. Both implementations visit a bucket in
  // canonical-key order, NOT interning order: interning order depends on
  // which rules share a leaf (a leaf first interned by an earlier rule
  // keeps its early id in the merged graph but not in a shard-local one),
  // so it would make a rule's arrival order — and thus chronicle
  // selection and emission order — depend on which other rules were
  // compiled alongside it. Canonical order restricted to any rule subset
  // is the same in every compilation, which is what the sharded
  // pipeline's serial-replay determinism relies on.
  if (options_.compile.indexed_dispatch) {
    index_ = std::make_unique<PrimitiveIndex>(
        *graph_, options_.compile.predicate_pushdown);
  } else {
    for (int id : graph_->primitive_nodes()) {
      const events::PrimitiveEventType& type = graph_->node(id).primitive;
      if (type.reader().is_literal) {
        primitive_by_reader_key_[type.reader().text].push_back(id);
      } else if (type.group_constraint().has_value()) {
        primitive_by_reader_key_[*type.group_constraint()].push_back(id);
      } else {
        primitive_unkeyed_.push_back(id);
      }
    }
    auto canonical_less = [this](int a, int b) {
      return graph_->node(a).canonical_key < graph_->node(b).canonical_key;
    };
    for (auto& [key, ids] : primitive_by_reader_key_) {
      std::sort(ids.begin(), ids.end(), canonical_less);
    }
    std::sort(primitive_unkeyed_.begin(), primitive_unkeyed_.end(),
              canonical_less);
  }
  // SEQ+ self-closure: needed unless every use is as a SEQ initiator
  // whose terminator actually arrives (then the terminator drives
  // materialization). A negated terminator never produces arrivals, so
  // SEQ(E+ ; ¬b) still needs the expiry timer — otherwise the run closes
  // arbitrarily late and its ¬b window is checked against an
  // already-pruned occurrence log.
  for (const GraphNode& node : graph_->nodes()) {
    if (node.op != ExprOp::kSeqPlus) continue;
    bool self = !node.rule_indexes.empty() || node.parents.empty();
    for (int parent_id : node.parents) {
      const GraphNode& parent = graph_->node(parent_id);
      if (parent.op != ExprOp::kSeq || parent.children[0] != node.id ||
          graph_->node(parent.children[1]).op == ExprOp::kNot) {
        self = true;
      }
    }
    seqplus_self_[node.id] = self;
  }
}

Status Detector::Process(const Observation& obs) {
  const DetectorInstruments* m = options_.instruments;
  if (obs.timestamp < clock_) {
    if (options_.tolerate_out_of_order) {
      ++stats_.out_of_order_dropped;
      if (m != nullptr && m->out_of_order_dropped != nullptr) {
        m->out_of_order_dropped->Increment();
      }
      return Status::Ok();
    }
    return Status::InvalidArgument(
        "out-of-order observation at " + FormatTimePoint(obs.timestamp) +
        " (clock is " + FormatTimePoint(clock_) + ")");
  }
  if (!external_seq_) ++cmd_seq_;
  FirePseudosBefore(obs.timestamp);
  clock_ = obs.timestamp;
  dispatch_sub_ = 0;
  ++stats_.observations;
  if (m != nullptr && m->observations != nullptr) m->observations->Increment();

  std::string_view group = env_->GroupViewOf(obs.reader);
  auto emit_leaf = [&](int node_id, const events::PrimitiveEventType& type) {
    ++stats_.primitive_matches;
    if (m != nullptr) m->primitive_matches->Increment();
    Bindings bindings = type.Bind(obs);
    // Derived binding: for a variable reader term `r`, `r_location` is
    // the reader's registered symbolic location — so location rules can
    // write `INSERT INTO OBJECTLOCATION VALUES (o, r_location, t, "UC")`
    // instead of hardcoding one location per rule.
    if (type.reader_location_sym() != events::kInvalidSymbol &&
        env_->readers != nullptr) {
      std::string_view location = env_->readers->LocationViewOf(obs.reader);
      if (!location.empty()) {
        bindings.BindScalar(type.reader_location_sym(), std::string(location));
      }
    }
    Emit(node_id,
         EventInstance::MakePrimitive(obs, std::move(bindings), NextSeq()));
  };
  if (index_ != nullptr) {
    // Compiled path: hash probes + residual view compares. The probe
    // implies reader-literal and pushed type predicates; type(o) is
    // resolved once per observation, and only when some leaf pushed it.
    if (index_->fullscan_fallback()) {
      ++fullscan_observations_;
      if (m != nullptr && m->dispatch_fullscan != nullptr) {
        m->dispatch_fullscan->Increment();
      }
    }
    // type(o) resolves lazily — only when a probed bucket actually has
    // typed sub-buckets — so observations whose buckets pushed no type
    // predicate never pay the EPC parse.
    std::string_view type_view;
    bool type_resolved = false;
    auto resolve_type = [&](const PrimitiveIndex::Bucket& bucket) {
      if (!type_resolved && !bucket.by_type.empty()) {
        type_view = env_->TypeViewOf(obs.object);
        type_resolved = true;
      }
    };
    auto candidate = [&](const DispatchEntry& entry) {
      const events::PrimitiveEventType& type =
          graph_->node(entry.node_id).primitive;
      if (entry.needs_full_match) {
        if (!type.Matches(obs, *env_)) return;
      } else {
        if (entry.check_group && group != entry.group) return;
        if (entry.check_object && obs.object != entry.object_literal) return;
      }
      emit_leaf(entry.node_id, type);
    };
    if (const PrimitiveIndex::Bucket* bucket =
            index_->FindReaderBucket(obs.reader)) {
      resolve_type(*bucket);
      PrimitiveIndex::Probe(*bucket, type_view, candidate);
    }
    if (group != obs.reader) {
      if (const PrimitiveIndex::Bucket* bucket =
              index_->FindReaderBucket(group)) {
        resolve_type(*bucket);
        PrimitiveIndex::Probe(*bucket, type_view, candidate);
      }
    }
    resolve_type(index_->unkeyed());
    PrimitiveIndex::Probe(index_->unkeyed(), type_view, candidate);
    return Status::Ok();
  }
  auto dispatch = [&](const std::vector<int>& nodes) {
    for (int node_id : nodes) {
      const events::PrimitiveEventType& type = graph_->node(node_id).primitive;
      if (!type.Matches(obs, *env_)) continue;
      emit_leaf(node_id, type);
    }
  };
  if (auto it = primitive_by_reader_key_.find(obs.reader);
      it != primitive_by_reader_key_.end()) {
    dispatch(it->second);
  }
  if (group != obs.reader) {
    if (auto it = primitive_by_reader_key_.find(group);
        it != primitive_by_reader_key_.end()) {
      dispatch(it->second);
    }
  }
  dispatch(primitive_unkeyed_);
  return Status::Ok();
}

void Detector::AdvanceTo(TimePoint t) {
  if (!external_seq_) ++cmd_seq_;
  if (t < clock_) return;
  // Same firing rule as Process: pseudo events at exactly `t` stay
  // pending, because an observation arriving at `t` must be handled first
  // — it can falsify a NOT window whose closed edge is `t`, or extend a
  // SEQ+ run whose closed distance bound lands on `t`. They fire once the
  // stream strictly passes `t` (or at Flush).
  FirePseudosBefore(t);
  clock_ = std::max(clock_, t);
}

void Detector::Flush() {
  if (!external_seq_) ++cmd_seq_;
  while (!pseudo_queue_.empty()) {
    PseudoEvent pe = pseudo_queue_.top();
    pseudo_queue_.pop();
    FirePseudo(pe);
  }
}

void Detector::FirePseudosBefore(TimePoint t) {
  while (!pseudo_queue_.empty() && pseudo_queue_.top().execute_at < t) {
    PseudoEvent pe = pseudo_queue_.top();
    pseudo_queue_.pop();
    FirePseudo(pe);
  }
}

void Detector::SchedulePseudo(TimePoint execute_at, TimePoint created_at,
                              int target_node, int parent_node,
                              uint64_t anchor_seq, uint64_t anchor_key) {
  if (execute_at == kTimeInfinity) return;
  ++stats_.pseudo_scheduled;
  // Stamp the scheduling position (see PseudoEvent::stamp). During a
  // firing, the position is the firing pseudo's own position plus a
  // per-firing sub-counter; during dispatch it is (clock, command, sub).
  std::vector<uint64_t> stamp;
  if (firing_ != nullptr) {
    stamp.reserve(firing_->stamp.size() + 3);
    stamp.push_back(static_cast<uint64_t>(firing_->execute_at));
    stamp.push_back(1);
    stamp.insert(stamp.end(), firing_->stamp.begin(), firing_->stamp.end());
    stamp.push_back(++fire_sub_);
  } else {
    stamp = {static_cast<uint64_t>(clock_), 0, cmd_seq_, ++dispatch_sub_};
  }
  pseudo_queue_.push(PseudoEvent{execute_at, created_at, target_node,
                                 parent_node, anchor_seq, anchor_key,
                                 ++pseudo_counter_, std::move(stamp)});
  if (const DetectorInstruments* m = options_.instruments) {
    m->pseudo_scheduled->Increment();
    int64_t depth = static_cast<int64_t>(pseudo_queue_.size());
    m->pseudo_queue_depth->Set(depth);
    m->pseudo_queue_peak->UpdateMax(depth);
  }
}

void Detector::Emit(int node_id, EventInstancePtr instance) {
  const GraphNode& node = graph_->node(node_id);
  if (node.within != kDurationInfinity && instance->interval() > node.within) {
    return;  // Violates the propagated interval constraint.
  }
  ++stats_.instances_produced;
  ++produced_per_node_[node_id];
  if (const DetectorInstruments* m = options_.instruments) {
    m->instances_produced->Increment();
    if (!m->node_firings.empty()) m->node_firings[node_id]->Increment();
  }
  if (options_.trace != nullptr) {
    options_.trace->RecordNodeActivation(options_.shard_id, node_id,
                                         events::ExprOpName(node.op),
                                         *instance);
  }
  for (size_t rule_index : node.rule_indexes) {
    ++stats_.rule_matches;
    if (options_.instruments != nullptr) {
      options_.instruments->rule_matches->Increment();
    }
    on_match_(rule_index, instance);
  }
  for (int parent_id : node.parents) {
    RouteToParent(parent_id, node_id, instance);
  }
}

void Detector::RouteToParent(int parent_id, int child_id,
                             const EventInstancePtr& instance) {
  const GraphNode& parent = graph_->node(parent_id);
  switch (parent.op) {
    case ExprOp::kPrimitive:
      assert(false && "primitive nodes have no children");
      return;
    case ExprOp::kOr:
      // OR forwards constituent occurrences unchanged.
      Emit(parent_id, instance);
      return;
    case ExprOp::kNot:
      NotLogInsert(parent_id, instance);
      return;
    case ExprOp::kSeqPlus:
      SeqPlusArrival(parent_id, instance);
      return;
    case ExprOp::kAnd: {
      // One key computation per (instance, node), shared by every role the
      // instance plays below.
      JoinKey key = KeyFor(parent_id, instance->bindings());
      for (int slot = 0; slot < 2; ++slot) {
        if (parent.children[slot] == child_id) {
          AndArrival(parent_id, slot, instance, key);
        }
      }
      return;
    }
    case ExprOp::kSeq: {
      JoinKey key = KeyFor(parent_id, instance->bindings());
      // Terminator role first, then initiator buffering, so an instance
      // serving both roles (duplicate-filter rule) pairs with a strictly
      // older occurrence before becoming an initiator itself.
      if (parent.children[1] == child_id) {
        SeqTerminatorArrival(parent_id, instance, key);
      }
      if (parent.children[0] == child_id) {
        SeqInitiatorArrival(parent_id, instance, key);
      }
      return;
    }
  }
}

// --- Slot buffers -------------------------------------------------------------

Detector::JoinKey Detector::KeyFor(int node_id,
                                   const Bindings& bindings) const {
  const GraphNode& node = graph_->node(node_id);
  JoinKey key;
  key.hash = events::ComputeJoinKey(bindings, node.join_syms, &key.complete);
  if (key.complete && options_.debug_force_join_collisions) {
    key.hash = kCollisionBucket;
  }
  return key;
}

void Detector::PruneBucketFront(std::deque<BufferedEntry>* bucket,
                                size_t* total) const {
  while (!bucket->empty() && bucket->front().deadline < clock_) {
    bucket->pop_front();
    --*total;
  }
}

void Detector::DrainSlotExpiry(SlotBuffer* slot) const {
  while (!slot->expiry.empty() && slot->expiry.front().first < clock_) {
    auto it = slot->buckets.find(slot->expiry.front().second);
    if (it != slot->buckets.end()) {
      PruneBucketFront(&it->second, &slot->total);
      if (it->second.empty()) slot->buckets.erase(it);
    }
    slot->expiry.pop_front();
  }
}

void Detector::BufferInsert(int node_id, int slot_index, EventInstancePtr e,
                            TimePoint deadline, JoinKey key) {
  SlotBuffer& slot = states_[node_id].slots[slot_index];
  DrainSlotExpiry(&slot);
  std::deque<BufferedEntry>& bucket = slot.buckets[key.hash];
  bucket.push_back(BufferedEntry{std::move(e), deadline});
  ++slot.total;
  if (deadline != kTimeInfinity) slot.expiry.emplace_back(deadline, key.hash);
}

// --- AND ------------------------------------------------------------------------

void Detector::AndArrival(int node_id, int slot, const EventInstancePtr& e,
                          JoinKey key) {
  const GraphNode& node = graph_->node(node_id);
  NodeState& st = states_[node_id];
  int other_slot = 1 - slot;
  const GraphNode& other = graph_->node(node.children[other_slot]);

  if (other.op == ExprOp::kNot) {
    // WITHIN(E ∧ ¬N, w): check the past window now, and the future window
    // at expiry via a pseudo event (paper Fig. 8).
    Duration w = node.within;  // Finite (validated at graph build).
    if (NotHasOccurrence(other.id, e->bindings(), e->t_end() - w, e->t_end(),
                         /*include_from=*/true, /*include_to=*/true)) {
      return;  // A negated occurrence already falsifies this instance.
    }
    TimePoint expiry = AddSaturating(e->t_begin(), w);
    uint64_t seq = e->sequence_number();
    TimePoint created = e->t_end();
    BufferInsert(node_id, slot, e, expiry, key);
    SchedulePseudo(expiry, created, other.id, node_id, seq, key.hash);
    return;
  }

  bool paired = PairBinary(node_id, slot, e, key);
  bool buffer = !paired;
  if (options_.context == ParameterContext::kUnrestricted) buffer = true;
  if (options_.context == ParameterContext::kRecent) {
    // Only the most recent instance per slot is retained.
    st.slots[slot].buckets.clear();
    st.slots[slot].expiry.clear();
    st.slots[slot].total = 0;
    buffer = true;
  }
  if (buffer) {
    BufferInsert(node_id, slot, e, AddSaturating(e->t_begin(), node.within),
                 key);
  }
}

// --- SEQ -------------------------------------------------------------------------

void Detector::SeqInitiatorArrival(int node_id, const EventInstancePtr& e1,
                                   JoinKey key) {
  const GraphNode& node = graph_->node(node_id);
  NodeState& st = states_[node_id];
  const GraphNode& right = graph_->node(node.children[1]);

  if (right.op == ExprOp::kNot) {
    // SEQ(a ; ¬b): confirmed at expiry if no negated occurrence follows.
    TimePoint expiry = std::min(AddSaturating(e1->t_begin(), node.within),
                                AddSaturating(e1->t_end(), node.dist_hi));
    uint64_t seq = e1->sequence_number();
    TimePoint created = e1->t_end();
    BufferInsert(node_id, 0, e1, expiry, key);
    SchedulePseudo(expiry, created, right.id, node_id, seq, key.hash);
    return;
  }
  TimePoint deadline = std::min(AddSaturating(e1->t_begin(), node.within),
                                AddSaturating(e1->t_end(), node.dist_hi));
  if (options_.context == ParameterContext::kRecent) {
    st.slots[0].buckets.clear();
    st.slots[0].expiry.clear();
    st.slots[0].total = 0;
  }
  BufferInsert(node_id, 0, e1, deadline, key);
}

void Detector::SeqTerminatorArrival(int node_id, const EventInstancePtr& e2,
                                    JoinKey key) {
  const GraphNode& node = graph_->node(node_id);
  const GraphNode& left = graph_->node(node.children[0]);

  if (left.op == ExprOp::kNot) {
    // WITHIN(¬a ; b, w): on b's arrival, query non-occurrence over the
    // preceding window (half-open: b itself does not falsify it).
    Duration width = std::min(node.within, node.dist_hi);
    TimePoint from = e2->t_end() - width;
    TimePoint to = e2->t_begin();
    if (!NotHasOccurrence(left.id, e2->bindings(), from, to,
                          /*include_from=*/true, /*include_to=*/false)) {
      EventInstancePtr synth =
          EventInstance::MakeComplex(from, to, Bindings(), {}, NextSeq());
      EventInstancePtr inst = EventInstance::MakeComplex(
          from, e2->t_end(), e2->bindings(), {std::move(synth), e2},
          NextSeq());
      Emit(node_id, std::move(inst));
    }
    return;
  }

  if (left.op == ExprOp::kSeqPlus) {
    // Close out runs so they are visible as initiators. A SEQ+ with no
    // bounds at all is closed by this terminator (Snoop A* semantics).
    bool force = left.dist_hi == kDurationInfinity &&
                 left.within == kDurationInfinity;
    MaterializeSeqPlus(left.id, force, /*include_now=*/false);
  }
  PairBinary(node_id, 1, e2, key);
}

// --- Pairing -----------------------------------------------------------------------

bool Detector::PairBinary(int node_id, int incoming_slot,
                          const EventInstancePtr& incoming, JoinKey key) {
  const GraphNode& node = graph_->node(node_id);
  NodeState& st = states_[node_id];
  SlotBuffer& buffer = st.slots[1 - incoming_slot];
  DrainSlotExpiry(&buffer);

  auto admissible = [&](const EventInstancePtr& cand) {
    if (node.op == ExprOp::kSeq) {
      // `cand` is the initiator, `incoming` the terminator.
      if (cand->t_end() >= incoming->t_begin()) return false;
      Duration d = incoming->t_end() - cand->t_end();
      if (d < node.dist_lo || d > node.dist_hi) return false;
    }
    if (node.within != kDurationInfinity &&
        events::CombinedInterval(*cand, *incoming) > node.within) {
      return false;
    }
    // Full unification re-check: hash-bucket collisions (and the wildcard
    // bucket) may surface non-matching candidates.
    return cand->bindings().UnifiesWith(incoming->bindings());
  };

  // Gather admissible candidates as (bucket, index) in chronicle order.
  struct Candidate {
    std::deque<BufferedEntry>* bucket;
    size_t index;
    uint64_t seq;
  };
  std::vector<Candidate> candidates;
  auto scan_bucket = [&](std::deque<BufferedEntry>* bucket) {
    PruneBucketFront(bucket, &buffer.total);
    for (size_t i = 0; i < bucket->size(); ++i) {
      const BufferedEntry& entry = (*bucket)[i];
      if (entry.deadline >= clock_ && admissible(entry.instance)) {
        candidates.push_back(
            Candidate{bucket, i, entry.instance->sequence_number()});
      }
    }
  };
  if (!key.complete) {
    // Incoming lacks a join variable: every bucket may hold partners.
    for (auto& [bucket_key, bucket] : buffer.buckets) scan_bucket(&bucket);
  } else {
    // Complete keys are never the wildcard value, so the wildcard bucket
    // is always a distinct, additional scan.
    if (auto it = buffer.buckets.find(key.hash); it != buffer.buckets.end()) {
      scan_bucket(&it->second);
    }
    if (auto it = buffer.buckets.find(kWildcardKey);
        it != buffer.buckets.end()) {
      scan_bucket(&it->second);
    }
  }
  if (candidates.empty()) return false;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seq < b.seq;
            });

  auto erase_candidates = [&](const std::vector<Candidate>& victims) {
    // Erase per bucket in descending index order.
    std::vector<Candidate> sorted = victims;
    std::sort(sorted.begin(), sorted.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.bucket != b.bucket) return a.bucket < b.bucket;
                return a.index > b.index;
              });
    for (const Candidate& victim : sorted) {
      victim.bucket->erase(victim.bucket->begin() +
                           static_cast<long>(victim.index));
      --buffer.total;
    }
  };

  switch (options_.context) {
    case ParameterContext::kChronicle: {
      EventInstancePtr partner =
          (*candidates.front().bucket)[candidates.front().index].instance;
      erase_candidates({candidates.front()});
      ProducePair(node_id, partner, incoming);
      return true;
    }
    case ParameterContext::kRecent: {
      EventInstancePtr partner =
          (*candidates.back().bucket)[candidates.back().index].instance;
      ProducePair(node_id, partner, incoming);  // Initiator is reused.
      return true;
    }
    case ParameterContext::kContinuous: {
      std::vector<EventInstancePtr> partners;
      partners.reserve(candidates.size());
      for (const Candidate& c : candidates) {
        partners.push_back((*c.bucket)[c.index].instance);
      }
      erase_candidates(candidates);
      for (EventInstancePtr& partner : partners) {
        ProducePair(node_id, partner, incoming);
      }
      return true;
    }
    case ParameterContext::kCumulative: {
      // All open initiators merge into one instance with the terminator.
      TimePoint t_begin = incoming->t_begin();
      Bindings merged = incoming->bindings().ToMulti();
      std::vector<EventInstancePtr> children;
      for (const Candidate& c : candidates) {
        const EventInstancePtr& cand = (*c.bucket)[c.index].instance;
        t_begin = std::min(t_begin, cand->t_begin());
        merged.Merge(cand->bindings().ToMulti());
        children.push_back(cand);
      }
      children.push_back(incoming);
      erase_candidates(candidates);
      Emit(node_id, EventInstance::MakeComplex(
                        t_begin, incoming->t_end(), std::move(merged),
                        std::move(children), NextSeq()));
      return true;
    }
    case ParameterContext::kUnrestricted: {
      for (const Candidate& c : candidates) {
        ProducePair(node_id, (*c.bucket)[c.index].instance, incoming);
      }
      return true;
    }
  }
  return false;
}

void Detector::ProducePair(int node_id, const EventInstancePtr& initiator,
                           const EventInstancePtr& terminator) {
  TimePoint t_begin = std::min(initiator->t_begin(), terminator->t_begin());
  TimePoint t_end = std::max(initiator->t_end(), terminator->t_end());
  Bindings merged = MergedOrDie(initiator->bindings(), terminator->bindings());
  std::vector<EventInstancePtr> children;
  if (initiator->t_begin() <= terminator->t_begin()) {
    children = {initiator, terminator};
  } else {
    children = {terminator, initiator};
  }
  Emit(node_id,
       EventInstance::MakeComplex(t_begin, t_end, std::move(merged),
                                  std::move(children), NextSeq()));
}

// --- SEQ+ -------------------------------------------------------------------------

void Detector::SeqPlusArrival(int node_id, const EventInstancePtr& e) {
  const GraphNode& node = graph_->node(node_id);
  NodeState& st = states_[node_id];

  bool extended = false;
  if (!st.open_runs.empty()) {
    Run& run = st.open_runs.front();
    Duration d = e->t_end() - run.t_end;
    bool fits_dist = d >= node.dist_lo && d <= node.dist_hi;
    bool fits_within = node.within == kDurationInfinity ||
                       e->t_end() - run.t_begin <= node.within;
    if (fits_dist && fits_within) {
      run.elements.push_back(e);
      run.bindings.Merge(e->bindings().ToMulti());
      run.t_end = e->t_end();
      extended = true;
    } else {
      Run closed = std::move(st.open_runs.front());
      st.open_runs.clear();
      CloseRun(node_id, std::move(closed));
    }
  }
  if (!extended) {
    Run run;
    run.elements = {e};
    run.bindings = e->bindings().ToMulti();
    run.t_begin = e->t_begin();
    run.t_end = e->t_end();
    st.open_runs.push_back(std::move(run));
  }
  if (seqplus_self_[node_id]) {
    const Run& run = st.open_runs.front();
    TimePoint expiry = std::min(AddSaturating(run.t_end, node.dist_hi),
                                AddSaturating(run.t_begin, node.within));
    SchedulePseudo(expiry, e->t_end(), node_id, node_id, /*anchor_seq=*/0,
                   kWildcardKey);
  }
}

void Detector::MaterializeSeqPlus(int node_id, bool force, bool include_now) {
  const GraphNode& node = graph_->node(node_id);
  NodeState& st = states_[node_id];
  if (st.open_runs.empty()) return;
  const Run& run = st.open_runs.front();
  // Distance and within bounds are closed, so a run whose expiry equals the
  // clock can still be extended by an element in the current dispatch round.
  // Callers reacting to an observation at `clock_` must therefore only close
  // runs whose expiry is strictly past (include_now=false); the pseudo-event
  // path fires only once the stream has strictly passed the expiry, so there
  // clock_ == expiry genuinely means dead (include_now=true).
  TimePoint expiry = std::min(AddSaturating(run.t_end, node.dist_hi),
                              AddSaturating(run.t_begin, node.within));
  bool expired = include_now ? expiry <= clock_ : expiry < clock_;
  if (force || expired) {
    Run closed = std::move(st.open_runs.front());
    st.open_runs.clear();
    CloseRun(node_id, std::move(closed));
  }
}

void Detector::CloseRun(int node_id, Run run) {
  Emit(node_id,
       EventInstance::MakeComplex(run.t_begin, run.t_end,
                                  std::move(run.bindings),
                                  std::move(run.elements), NextSeq()));
}

// --- NOT --------------------------------------------------------------------------

void Detector::NotLogInsert(int not_node_id, const EventInstancePtr& e) {
  const GraphNode& node = graph_->node(not_node_id);
  NotLog& log = states_[not_node_id].not_log;
  PruneNotLog(not_node_id);
  JoinKey key = KeyFor(not_node_id, e->bindings());
  TimePoint expiry = AddSaturating(e->t_end(), node.retention);
  log.buckets[key.hash].push_back(e);
  ++log.total;
  if (expiry != kTimeInfinity) log.expiry.emplace_back(expiry, key.hash);
}

bool Detector::NotHasOccurrence(int not_node_id, const Bindings& probe,
                                TimePoint from, TimePoint to,
                                bool include_from, bool include_to) {
  NotLog& log = states_[not_node_id].not_log;
  auto in_window = [&](const EventInstancePtr& inst) {
    TimePoint t = inst->t_end();
    bool after_from = include_from ? t >= from : t > from;
    bool before_to = include_to ? t <= to : t < to;
    return after_from && before_to;
  };
  auto scan_bucket = [&](const std::deque<EventInstancePtr>& bucket) {
    for (const EventInstancePtr& inst : bucket) {
      // UnifiesWith re-checks bindings, so collisions cannot produce a
      // false "occurrence exists".
      if (in_window(inst) && probe.UnifiesWith(inst->bindings())) return true;
    }
    return false;
  };
  JoinKey key = KeyFor(not_node_id, probe);
  if (!key.complete) {
    for (const auto& [bucket_key, bucket] : log.buckets) {
      if (scan_bucket(bucket)) return true;
    }
    return false;
  }
  if (auto it = log.buckets.find(key.hash); it != log.buckets.end()) {
    if (scan_bucket(it->second)) return true;
  }
  if (auto it = log.buckets.find(kWildcardKey); it != log.buckets.end()) {
    if (scan_bucket(it->second)) return true;
  }
  return false;
}

void Detector::PruneNotLog(int not_node_id) {
  const GraphNode& node = graph_->node(not_node_id);
  if (node.retention == kDurationInfinity) return;
  NotLog& log = states_[not_node_id].not_log;
  while (!log.expiry.empty() && log.expiry.front().first < clock_) {
    auto it = log.buckets.find(log.expiry.front().second);
    if (it != log.buckets.end()) {
      std::deque<EventInstancePtr>& bucket = it->second;
      while (!bucket.empty() &&
             AddSaturating(bucket.front()->t_end(), node.retention) <
                 clock_) {
        bucket.pop_front();
        --log.total;
      }
      if (bucket.empty()) log.buckets.erase(it);
    }
    log.expiry.pop_front();
  }
}

// --- Pseudo events -------------------------------------------------------------------

void Detector::FirePseudo(const PseudoEvent& pe) {
  if (const DetectorInstruments* m = options_.instruments) {
    m->pseudo_fired->Increment();
    m->pseudo_queue_depth->Set(static_cast<int64_t>(pseudo_queue_.size()));
    m->pseudo_lag_us->Record(
        clock_ > pe.execute_at
            ? static_cast<uint64_t>(clock_ - pe.execute_at)
            : 0);
  }
  if (options_.trace != nullptr) {
    options_.trace->RecordPseudoFired(options_.shard_id, pe.target_node,
                                      pe.execute_at, pe.created_at);
  }
  clock_ = std::max(clock_, pe.execute_at);
  ++stats_.pseudo_fired;
  // Everything below — cascaded schedules and emitted matches included —
  // happens "during this firing" for stamping purposes.
  firing_ = &pe;
  fire_sub_ = 0;
  struct FiringScope {
    const PseudoEvent** slot;
    ~FiringScope() { *slot = nullptr; }
  } scope{&firing_};
  const GraphNode& parent = graph_->node(pe.parent_node);

  if (parent.op == ExprOp::kSeqPlus) {
    MaterializeSeqPlus(pe.parent_node, /*force=*/false, /*include_now=*/true);
    return;
  }

  // Anchored completion for AND / SEQ with a negated side: find the
  // buffered anchor in its bucket.
  NodeState& st = states_[pe.parent_node];
  EventInstancePtr anchor;
  for (int slot = 0; slot < 2 && anchor == nullptr; ++slot) {
    auto it = st.slots[slot].buckets.find(pe.anchor_key);
    if (it == st.slots[slot].buckets.end()) continue;
    std::deque<BufferedEntry>& bucket = it->second;
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].instance->sequence_number() == pe.anchor_seq) {
        anchor = bucket[i].instance;
        bucket.erase(bucket.begin() + static_cast<long>(i));
        --st.slots[slot].total;
        break;
      }
    }
  }
  if (anchor == nullptr) return;  // Anchor consumed or expired.

  bool include_from = parent.op == ExprOp::kAnd;  // SEQ excludes the anchor.
  if (NotHasOccurrence(pe.target_node, anchor->bindings(), pe.created_at,
                       pe.execute_at, include_from, /*include_to=*/true)) {
    return;  // Negation falsified; the anchor is deleted (Fig. 8d).
  }
  EventInstancePtr synth = EventInstance::MakeComplex(
      pe.created_at, pe.execute_at, Bindings(), {}, NextSeq());
  EventInstancePtr inst = EventInstance::MakeComplex(
      anchor->t_begin(), pe.execute_at, anchor->bindings(),
      {anchor, std::move(synth)}, NextSeq());
  Emit(pe.parent_node, std::move(inst));
}

// --- Checkpoint/restore --------------------------------------------------------------

void Detector::SaveState(const std::vector<std::string>& state_keys,
                         snapshot::DetectorSnapshot* out) const {
  out->source_id = options_.shard_id;
  out->clock = clock_;
  out->sequence_counter = sequence_counter_;
  // Canonical dense orders: restore renumbers the queue 1..n (fired
  // pseudos leave gaps), so capture the live count — not the raw counter
  // — to keep capture→restore→capture byte-identical. Relative FIFO
  // order is preserved, and post-restore pseudos still sort after every
  // restored one.
  out->pseudo_counter = pseudo_queue_.size();
  out->stats = stats_;
  out->instances.clear();
  out->nodes.clear();
  out->pseudos.clear();

  // Children-first instance interning. Instances are visited in
  // deterministic order (nodes by id, entries by sequence number), so the
  // table layout — and the encoded bytes — are reproducible.
  std::unordered_map<const EventInstance*, uint32_t> interned;
  std::function<uint32_t(const EventInstancePtr&)> intern =
      [&](const EventInstancePtr& e) -> uint32_t {
    if (auto it = interned.find(e.get()); it != interned.end()) {
      return it->second;
    }
    snapshot::InstanceRecord rec;
    rec.is_primitive = e->is_primitive();
    if (rec.is_primitive) {
      rec.observation = e->observation();
    } else {
      rec.t_begin = e->t_begin();
      rec.t_end = e->t_end();
    }
    rec.sequence_number = e->sequence_number();
    for (const auto& [sym, value] : e->bindings().scalars()) {
      rec.scalars.emplace_back(events::SymbolName(sym), value);
    }
    for (const auto& [sym, values] : e->bindings().multis()) {
      rec.multis.emplace_back(events::SymbolName(sym), values);
    }
    for (const EventInstancePtr& child : e->children()) {
      rec.children.push_back(intern(child));
    }
    uint32_t index = static_cast<uint32_t>(out->instances.size());
    out->instances.push_back(std::move(rec));
    interned.emplace(e.get(), index);
    return index;
  };
  auto by_seq = [](const std::pair<EventInstancePtr, TimePoint>& a,
                   const std::pair<EventInstancePtr, TimePoint>& b) {
    return a.first->sequence_number() < b.first->sequence_number();
  };

  std::vector<int> record_of(states_.size(), -1);
  for (size_t id = 0; id < states_.size(); ++id) {
    const NodeState& st = states_[id];
    const GraphNode& node = graph_->node(static_cast<int>(id));
    snapshot::NodeStateRecord rec;
    rec.retention = node.retention;
    rec.produced = produced_per_node_[id];
    for (int slot = 0; slot < 2; ++slot) {
      std::vector<std::pair<EventInstancePtr, TimePoint>> live;
      for (const auto& [key, bucket] : st.slots[slot].buckets) {
        for (const BufferedEntry& entry : bucket) {
          // Skip entries already past their deadline (lazily pruned); no
          // pairing or anchored pseudo can ever see them again.
          if (entry.deadline < clock_) continue;
          live.emplace_back(entry.instance, entry.deadline);
        }
      }
      std::sort(live.begin(), live.end(), by_seq);
      rec.slots[slot].reserve(live.size());
      for (const auto& [e, deadline] : live) {
        rec.slots[slot].push_back(
            snapshot::SlotEntryRecord{intern(e), deadline});
      }
    }
    {
      std::vector<std::pair<EventInstancePtr, TimePoint>> live;
      for (const auto& [key, bucket] : st.not_log.buckets) {
        for (const EventInstancePtr& e : bucket) {
          if (AddSaturating(e->t_end(), node.retention) < clock_) continue;
          live.emplace_back(e, 0);
        }
      }
      std::sort(live.begin(), live.end(), by_seq);
      rec.not_log.reserve(live.size());
      for (const auto& [e, unused] : live) rec.not_log.push_back(intern(e));
    }
    rec.runs.reserve(st.open_runs.size());
    for (const Run& run : st.open_runs) {
      snapshot::RunRecord rr;
      rr.elements.reserve(run.elements.size());
      for (const EventInstancePtr& e : run.elements) {
        rr.elements.push_back(intern(e));
      }
      rr.t_begin = run.t_begin;
      rr.t_end = run.t_end;
      rec.runs.push_back(std::move(rr));
    }
    if (rec.produced == 0 && rec.slots[0].empty() && rec.slots[1].empty() &&
        rec.not_log.empty() && rec.runs.empty()) {
      continue;
    }
    rec.state_key = state_keys[id];
    record_of[id] = static_cast<int>(out->nodes.size());
    out->nodes.push_back(std::move(rec));
  }

  // Pseudo queue in firing order. Anchors become positions into the
  // parent's serialized slot lists (sequence numbers are source-local).
  auto queue = pseudo_queue_;
  out->pseudos.reserve(queue.size());
  while (!queue.empty()) {
    PseudoEvent pe = queue.top();
    queue.pop();
    snapshot::PseudoRecord rec;
    rec.execute_at = pe.execute_at;
    rec.created_at = pe.created_at;
    rec.stamp = pe.stamp;
    rec.target_key = state_keys[pe.target_node];
    rec.parent_key = state_keys[pe.parent_node];
    if (graph_->node(pe.parent_node).op == ExprOp::kSeqPlus) {
      rec.anchor_kind = snapshot::AnchorKind::kNone;
    } else {
      rec.anchor_kind = snapshot::AnchorKind::kStale;
      if (int rid = record_of[pe.parent_node]; rid >= 0) {
        const snapshot::NodeStateRecord& nrec = out->nodes[rid];
        for (int slot = 0;
             slot < 2 && rec.anchor_kind == snapshot::AnchorKind::kStale;
             ++slot) {
          for (size_t pos = 0; pos < nrec.slots[slot].size(); ++pos) {
            if (out->instances[nrec.slots[slot][pos].instance]
                    .sequence_number == pe.anchor_seq) {
              rec.anchor_kind = snapshot::AnchorKind::kLive;
              rec.anchor_slot = static_cast<uint8_t>(slot);
              rec.anchor_pos = static_cast<uint32_t>(pos);
              break;
            }
          }
        }
      }
    }
    out->pseudos.push_back(std::move(rec));
  }
}

Status Detector::RestoreState(const snapshot::RestorePlan& plan,
                              const DetectorStats& stats) {
  states_.assign(graph_->num_nodes(), NodeState{});
  produced_per_node_.assign(graph_->num_nodes(), 0);
  pseudo_queue_ = {};
  clock_ = plan.clock;
  sequence_counter_ = plan.sequence_counter;
  pseudo_counter_ = plan.pseudo_counter;
  stats_ = stats;

  for (const snapshot::RestoredNode& rn : plan.nodes) {
    if (rn.node_id < 0 || rn.node_id >= static_cast<int>(states_.size())) {
      return Status::Internal("restore: node id out of range");
    }
    NodeState& st = states_[rn.node_id];
    const GraphNode& node = graph_->node(rn.node_id);
    produced_per_node_[rn.node_id] = rn.produced;
    for (int slot = 0; slot < 2; ++slot) {
      for (const auto& [e, deadline] : rn.slots[slot]) {
        // Entries arrive in sequence order, so per-bucket order and the
        // expiry deque reproduce the original arrival order.
        JoinKey key = KeyFor(rn.node_id, e->bindings());
        st.slots[slot].buckets[key.hash].push_back(BufferedEntry{e, deadline});
        ++st.slots[slot].total;
        if (deadline != kTimeInfinity) {
          st.slots[slot].expiry.emplace_back(deadline, key.hash);
        }
      }
    }
    for (const EventInstancePtr& e : rn.not_log) {
      JoinKey key = KeyFor(rn.node_id, e->bindings());
      TimePoint expiry = AddSaturating(e->t_end(), node.retention);
      st.not_log.buckets[key.hash].push_back(e);
      ++st.not_log.total;
      if (expiry != kTimeInfinity) {
        st.not_log.expiry.emplace_back(expiry, key.hash);
      }
    }
    for (const snapshot::RestoredRun& rr : rn.runs) {
      if (rr.elements.empty()) {
        return Status::Internal("restore: SEQ+ run with no elements");
      }
      Run run;
      run.elements = rr.elements;
      run.bindings = rr.elements.front()->bindings().ToMulti();
      for (size_t i = 1; i < rr.elements.size(); ++i) {
        if (!run.bindings.Merge(rr.elements[i]->bindings().ToMulti())) {
          return Status::Internal("restore: SEQ+ run bindings do not merge");
        }
      }
      run.t_begin = rr.t_begin;
      run.t_end = rr.t_end;
      st.open_runs.push_back(std::move(run));
    }
  }

  for (const snapshot::RestoredPseudo& rp : plan.pseudos) {
    if (rp.target_node < 0 ||
        rp.target_node >= static_cast<int>(states_.size()) ||
        rp.parent_node < 0 ||
        rp.parent_node >= static_cast<int>(states_.size())) {
      return Status::Internal("restore: pseudo node id out of range");
    }
    uint64_t anchor_seq = 0;
    uint64_t anchor_key = kWildcardKey;
    if (rp.anchor != nullptr) {
      anchor_seq = rp.anchor->sequence_number();
      anchor_key = KeyFor(rp.parent_node, rp.anchor->bindings()).hash;
    }
    // Synthesized stamp: [0, 0, 0, order] sorts before every stamp a
    // post-restore command can mint (their sub-counters start at 1), and
    // preserves the merged queue order among restored pseudos — exactly
    // the "scheduled before the checkpoint" position.
    pseudo_queue_.push(PseudoEvent{rp.execute_at, rp.created_at,
                                   rp.target_node, rp.parent_node, anchor_seq,
                                   anchor_key, rp.order,
                                   {0, 0, 0, rp.order}});
  }
  if (const DetectorInstruments* m = options_.instruments) {
    int64_t depth = static_cast<int64_t>(pseudo_queue_.size());
    if (m->pseudo_queue_depth != nullptr) m->pseudo_queue_depth->Set(depth);
    if (m->pseudo_queue_peak != nullptr) {
      m->pseudo_queue_peak->UpdateMax(depth);
    }
  }
  return Status::Ok();
}

// --- Helpers ------------------------------------------------------------------------

size_t Detector::TotalBufferedEntries() const {
  size_t total = 0;
  for (size_t i = 0; i < states_.size(); ++i) {
    total += BufferedAt(static_cast<int>(i));
  }
  return total;
}

size_t Detector::BufferedAt(int node_id) const {
  const NodeState& st = states_[node_id];
  size_t total = st.slots[0].total + st.slots[1].total + st.not_log.total;
  for (const Run& run : st.open_runs) total += run.elements.size();
  return total;
}

}  // namespace rfidcep::engine
