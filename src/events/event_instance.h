// Event instances (occurrences) and the paper's temporal functions (Fig. 3).
//
// An EventInstance is an occurrence of an event type over [t_begin, t_end].
// Primitive instances wrap one Observation; complex instances own their
// constituent instances, so a detected match can be traversed for action
// parameter binding. Instances are immutable after construction and shared
// between buffers via shared_ptr.

#ifndef RFIDCEP_EVENTS_EVENT_INSTANCE_H_
#define RFIDCEP_EVENTS_EVENT_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "events/binding.h"
#include "events/observation.h"

namespace rfidcep::events {

class EventInstance;
using EventInstancePtr = std::shared_ptr<const EventInstance>;

class EventInstance {
 public:
  // Creates a primitive instance from `obs` with the given variable
  // bindings (reader/object/time variables of the matched primitive type).
  static EventInstancePtr MakePrimitive(Observation obs, Bindings bindings,
                                        uint64_t sequence_number);

  // Creates a complex instance spanning [t_begin, t_end] with merged
  // `bindings` and the given constituents.
  static EventInstancePtr MakeComplex(TimePoint t_begin, TimePoint t_end,
                                      Bindings bindings,
                                      std::vector<EventInstancePtr> children,
                                      uint64_t sequence_number);

  bool is_primitive() const { return observation_.has_value(); }

  TimePoint t_begin() const { return t_begin_; }
  TimePoint t_end() const { return t_end_; }

  // interval(e) = t_end(e) - t_begin(e). Zero for primitive instances.
  Duration interval() const { return t_end_ - t_begin_; }

  // Engine-global arrival order; ties in t_end are broken by this to make
  // chronicle pairing deterministic.
  uint64_t sequence_number() const { return sequence_number_; }

  const Bindings& bindings() const { return bindings_; }
  // Primitive only.
  const Observation& observation() const { return *observation_; }
  const std::vector<EventInstancePtr>& children() const { return children_; }

  // Flattens the instance tree into its primitive observations, in tree
  // (left-to-right, i.e. temporal) order.
  std::vector<Observation> CollectObservations() const;

  // Debug rendering, e.g. "[10.000000s,20.000000s](2 children)".
  std::string ToString() const;

 private:
  EventInstance() = default;

  TimePoint t_begin_ = 0;
  TimePoint t_end_ = 0;
  Bindings bindings_;
  std::optional<Observation> observation_;
  std::vector<EventInstancePtr> children_;
  uint64_t sequence_number_ = 0;
};

// dist(e1, e2) = t_end(e2) - t_end(e1)  (paper Fig. 3).
inline Duration Dist(const EventInstance& e1, const EventInstance& e2) {
  return e2.t_end() - e1.t_end();
}

// interval(e1, e2) = max(t_end) - min(t_begin)  (paper Fig. 3).
inline Duration CombinedInterval(const EventInstance& e1,
                                 const EventInstance& e2) {
  return std::max(e1.t_end(), e2.t_end()) -
         std::min(e1.t_begin(), e2.t_begin());
}

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_EVENT_INSTANCE_H_
