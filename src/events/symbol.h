// Interned variable names (symbols).
//
// Rules reference a fixed, small vocabulary of variables (r, o1, t2, ...):
// the parser and primitive-type constructors intern every variable name at
// Compile() time, and the detection hot path then works exclusively with
// 32-bit SymbolIds — no string hashing or comparison per event. The table
// is global and append-only; ids are dense and stable for the lifetime of
// the process, so they can be compared, sorted, and used as join keys.

#ifndef RFIDCEP_EVENTS_SYMBOL_H_
#define RFIDCEP_EVENTS_SYMBOL_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rfidcep::events {

using SymbolId = uint32_t;

// Returned by lookups for names that were never interned.
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

class SymbolTable {
 public:
  // The process-wide table used by the parser, graph compiler, and
  // Bindings' string convenience overloads.
  static SymbolTable& Global();

  // Returns the id of `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  // Returns the id of `name`, or kInvalidSymbol if it was never interned.
  SymbolId Find(std::string_view name) const;

  // The name interned under `id`; requires a valid id from this table.
  // The reference stays valid for the table's lifetime.
  const std::string& NameOf(SymbolId id) const;

  size_t size() const;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, SymbolId, StringHash, std::equal_to<>> ids_;
  std::deque<std::string> names_;  // Stable storage indexed by id.
};

// Shorthands over SymbolTable::Global().
SymbolId InternSymbol(std::string_view name);
SymbolId FindSymbol(std::string_view name);
const std::string& SymbolName(SymbolId id);

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_SYMBOL_H_
