#include "events/event_type.h"

namespace rfidcep::events {

PrimitiveEventType::PrimitiveEventType(Term reader, Term object,
                                       std::string time_var)
    : reader_(std::move(reader)),
      object_(std::move(object)),
      time_var_(std::move(time_var)) {
  if (!reader_.is_literal && !reader_.text.empty()) {
    reader_sym_ = InternSymbol(reader_.text);
    reader_location_sym_ = InternSymbol(reader_.text + "_location");
  }
  if (!object_.is_literal && !object_.text.empty()) {
    object_sym_ = InternSymbol(object_.text);
  }
  if (!time_var_.empty()) {
    time_sym_ = InternSymbol(time_var_);
  }
}

bool PrimitiveEventType::Matches(const Observation& obs,
                                 const Environment& env) const {
  if (reader_.is_literal) {
    if (obs.reader != reader_.text &&
        env.GroupViewOf(obs.reader) != reader_.text) {
      return false;
    }
  }
  if (object_.is_literal && obs.object != object_.text) return false;
  if (group_constraint_.has_value() &&
      env.GroupViewOf(obs.reader) != *group_constraint_) {
    return false;
  }
  if (type_constraint_.has_value() &&
      env.TypeOf(obs.object) != *type_constraint_) {
    return false;
  }
  return true;
}

Bindings PrimitiveEventType::Bind(const Observation& obs) const {
  Bindings bindings;
  if (reader_sym_ != kInvalidSymbol) {
    bindings.BindScalar(reader_sym_, obs.reader);
  }
  if (object_sym_ != kInvalidSymbol) {
    bindings.BindScalar(object_sym_, obs.object);
  }
  if (time_sym_ != kInvalidSymbol) {
    bindings.BindScalar(time_sym_, obs.timestamp);
  }
  return bindings;
}

std::string PrimitiveEventType::ToRuleSyntax() const {
  auto term = [](const Term& t) {
    return t.is_literal ? "\"" + t.text + "\"" : t.text;
  };
  std::string out = "observation(" + term(reader_) + ", " + term(object_) +
                    ", " + time_var_ + ")";
  if (group_constraint_.has_value()) {
    std::string var = reader_.is_literal ? std::string("r") : reader_.text;
    out += ", group(" + var + ") = \"" + *group_constraint_ + "\"";
  }
  if (type_constraint_.has_value()) {
    std::string var = object_.is_literal ? std::string("o") : object_.text;
    out += ", type(" + var + ") = \"" + *type_constraint_ + "\"";
  }
  return out;
}

std::string PrimitiveEventType::CanonicalKey() const {
  auto term = [](const Term& t) {
    return t.is_literal ? "'" + t.text + "'" : t.text;
  };
  std::string out = "obs(" + term(reader_) + "," + term(object_) + "," +
                    time_var_ + ")";
  if (group_constraint_.has_value()) {
    out += ",group='" + *group_constraint_ + "'";
  }
  if (type_constraint_.has_value()) {
    out += ",type='" + *type_constraint_ + "'";
  }
  return out;
}

}  // namespace rfidcep::events
