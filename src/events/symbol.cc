#include "events/symbol.h"

#include <cassert>
#include <mutex>

namespace rfidcep::events {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolId SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = ids_.find(name);
  return it != ids_.end() ? it->second : kInvalidSymbol;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  std::shared_lock lock(mu_);
  assert(id < names_.size());
  return names_[id];
}

size_t SymbolTable::size() const {
  std::shared_lock lock(mu_);
  return names_.size();
}

SymbolId InternSymbol(std::string_view name) {
  return SymbolTable::Global().Intern(name);
}

SymbolId FindSymbol(std::string_view name) {
  return SymbolTable::Global().Find(name);
}

const std::string& SymbolName(SymbolId id) {
  return SymbolTable::Global().NameOf(id);
}

}  // namespace rfidcep::events
