#include "events/event_instance.h"

namespace rfidcep::events {

EventInstancePtr EventInstance::MakePrimitive(Observation obs,
                                              Bindings bindings,
                                              uint64_t sequence_number) {
  auto instance = std::shared_ptr<EventInstance>(new EventInstance());
  instance->t_begin_ = obs.timestamp;
  instance->t_end_ = obs.timestamp;
  instance->bindings_ = std::move(bindings);
  instance->observation_ = std::move(obs);
  instance->sequence_number_ = sequence_number;
  return instance;
}

EventInstancePtr EventInstance::MakeComplex(
    TimePoint t_begin, TimePoint t_end, Bindings bindings,
    std::vector<EventInstancePtr> children, uint64_t sequence_number) {
  auto instance = std::shared_ptr<EventInstance>(new EventInstance());
  instance->t_begin_ = t_begin;
  instance->t_end_ = t_end;
  instance->bindings_ = std::move(bindings);
  instance->children_ = std::move(children);
  instance->sequence_number_ = sequence_number;
  return instance;
}

namespace {

void Collect(const EventInstance& instance, std::vector<Observation>* out) {
  if (instance.is_primitive()) {
    out->push_back(instance.observation());
    return;
  }
  for (const EventInstancePtr& child : instance.children()) {
    Collect(*child, out);
  }
}

}  // namespace

std::vector<Observation> EventInstance::CollectObservations() const {
  std::vector<Observation> out;
  Collect(*this, &out);
  return out;
}

std::string EventInstance::ToString() const {
  std::string out = "[" + FormatTimePoint(t_begin_) + "," +
                    FormatTimePoint(t_end_) + "]";
  if (is_primitive()) {
    out += "obs(" + observation_->reader + "," + observation_->object + ")";
  } else {
    out += "(" + std::to_string(children_.size()) + " children)";
  }
  return out;
}

}  // namespace rfidcep::events
