// Variable bindings carried by event instances.
//
// The paper's rule language names observation attributes with variables:
//   observation(r, o, t1); observation(r, o, t2)
// Re-using a variable across constituent events (here `r` and `o`) is an
// equality join: the two observations must agree on that attribute. Rule 1
// (duplicate detection) and Rule 2 (infield filtering) depend on this.
//
// Inside an aperiodic sequence (SEQ+/TSEQ+) a variable ranges over every
// repetition, so its binding becomes *multi-valued* — Rule 4's
// `BULK INSERT ... VALUES (o2, o1, t2, "UC")` expands the multi-valued `o1`
// into one row per packed item. Multi-valued bindings do not participate in
// equality joins.
//
// Layout: variables are interned SymbolIds (see symbol.h) and bindings are
// sorted small-vectors of (SymbolId, value) pairs. A primitive instance
// carries at most a handful of variables, so sorted vectors beat node-based
// maps on every operation that matters — Merge and unification walk the two
// vectors once with integer comparisons, no per-node allocation and no
// string compares. String-keyed overloads survive as conveniences for tests
// and action parameter building; the detection hot path never uses them.

#ifndef RFIDCEP_EVENTS_BINDING_H_
#define RFIDCEP_EVENTS_BINDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/time.h"
#include "events/symbol.h"

namespace rfidcep::events {

// A bound attribute value: an EPC string or a timestamp.
using BindingValue = std::variant<std::string, TimePoint>;

std::string BindingValueToString(const BindingValue& value);

// 64-bit content hash of a binding value (type-tagged, so the string "0"
// and the timestamp 0 hash differently). Never returns kWildcardJoinKey.
uint64_t HashBindingValue(const BindingValue& value);

class Bindings {
 public:
  using ScalarEntry = std::pair<SymbolId, BindingValue>;
  using MultiEntry = std::pair<SymbolId, std::vector<BindingValue>>;

  Bindings() = default;

  // --- SymbolId API (hot path) --------------------------------------------
  // Binds `var` to a scalar value. Overwrites any existing scalar binding.
  void BindScalar(SymbolId var, BindingValue value);

  // Appends `value` to the multi-valued binding of `var`.
  void BindMulti(SymbolId var, BindingValue value);

  bool HasScalar(SymbolId var) const { return FindScalar(var) != nullptr; }
  bool HasMulti(SymbolId var) const { return FindMulti(var) != nullptr; }

  // Scalar lookup; requires HasScalar(var).
  const BindingValue& Scalar(SymbolId var) const;
  // Scalar lookup; nullptr when unbound. Never allocates.
  const BindingValue* FindScalar(SymbolId var) const;

  // Multi-valued lookup; requires HasMulti(var).
  const std::vector<BindingValue>& Multi(SymbolId var) const;
  const std::vector<BindingValue>* FindMulti(SymbolId var) const;

  // --- String conveniences (tests, action parameters) ---------------------
  // Binding interns the name; lookups resolve it without interning.
  void BindScalar(std::string_view var, BindingValue value) {
    BindScalar(InternSymbol(var), std::move(value));
  }
  void BindMulti(std::string_view var, BindingValue value) {
    BindMulti(InternSymbol(var), std::move(value));
  }
  bool HasScalar(std::string_view var) const {
    return HasScalar(FindSymbol(var));
  }
  bool HasMulti(std::string_view var) const {
    return HasMulti(FindSymbol(var));
  }
  const BindingValue& Scalar(std::string_view var) const {
    return Scalar(FindSymbol(var));
  }
  const std::vector<BindingValue>& Multi(std::string_view var) const {
    return Multi(FindSymbol(var));
  }

  // --- Set operations -------------------------------------------------------
  // True if `other` could merge into *this: every shared scalar variable
  // agrees and no variable is scalar on one side, multi-valued on the
  // other. Pure comparison — never allocates or mutates.
  bool UnifiesWith(const Bindings& other) const;

  // Attempts to merge `other` into *this. Fails (returns false, leaving
  // *this unspecified) if a shared scalar variable has conflicting values
  // or a variable is scalar on one side and multi-valued on the other.
  // Multi-valued bindings concatenate (other's values appended).
  bool Merge(const Bindings& other);
  // Rvalue overload: moves other's values instead of copying them.
  bool Merge(Bindings&& other);

  // Demotes every scalar binding to a single-element multi-valued binding.
  // Used when an instance enters an aperiodic sequence run.
  Bindings ToMulti() const;

  size_t scalar_count() const { return scalars_.size(); }
  size_t multi_count() const { return multis_.size(); }

  // Entries sorted by SymbolId.
  const std::vector<ScalarEntry>& scalars() const { return scalars_; }
  const std::vector<MultiEntry>& multis() const { return multis_; }

 private:
  std::vector<ScalarEntry> scalars_;  // Sorted by SymbolId, unique.
  std::vector<MultiEntry> multis_;    // Sorted by SymbolId, unique.
};

// --- Join keys ---------------------------------------------------------------

// Bucket key for entries whose join variables are not all bound; buffers
// keep such entries in a wildcard bucket that every lookup also scans.
inline constexpr uint64_t kWildcardJoinKey = 0;

// 64-bit equality-join key of `bindings` over the interned variables
// `vars` (must be the node's sorted join_syms). Returns kWildcardJoinKey
// and sets *complete=false when any variable lacks a scalar binding;
// otherwise a mixed hash of the bound values (never the wildcard value).
// Distinct value tuples may collide — callers must re-check unification on
// the bucket scan, which the detector's pairing predicate always does.
uint64_t ComputeJoinKey(const Bindings& bindings, const SymbolId* vars,
                        size_t num_vars, bool* complete);

inline uint64_t ComputeJoinKey(const Bindings& bindings,
                               const std::vector<SymbolId>& vars,
                               bool* complete) {
  return ComputeJoinKey(bindings, vars.data(), vars.size(), complete);
}

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_BINDING_H_
