// Variable bindings carried by event instances.
//
// The paper's rule language names observation attributes with variables:
//   observation(r, o, t1); observation(r, o, t2)
// Re-using a variable across constituent events (here `r` and `o`) is an
// equality join: the two observations must agree on that attribute. Rule 1
// (duplicate detection) and Rule 2 (infield filtering) depend on this.
//
// Inside an aperiodic sequence (SEQ+/TSEQ+) a variable ranges over every
// repetition, so its binding becomes *multi-valued* — Rule 4's
// `BULK INSERT ... VALUES (o2, o1, t2, "UC")` expands the multi-valued `o1`
// into one row per packed item. Multi-valued bindings do not participate in
// equality joins.

#ifndef RFIDCEP_EVENTS_BINDING_H_
#define RFIDCEP_EVENTS_BINDING_H_

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/time.h"

namespace rfidcep::events {

// A bound attribute value: an EPC string or a timestamp.
using BindingValue = std::variant<std::string, TimePoint>;

std::string BindingValueToString(const BindingValue& value);

class Bindings {
 public:
  Bindings() = default;

  // Binds `var` to a scalar value. Overwrites any existing scalar binding.
  void BindScalar(const std::string& var, BindingValue value);

  // Appends `value` to the multi-valued binding of `var`.
  void BindMulti(const std::string& var, BindingValue value);

  bool HasScalar(const std::string& var) const;
  bool HasMulti(const std::string& var) const;

  // Scalar lookup; requires HasScalar(var).
  const BindingValue& Scalar(const std::string& var) const;

  // Multi-valued lookup; requires HasMulti(var).
  const std::vector<BindingValue>& Multi(const std::string& var) const;

  // Attempts to merge `other` into *this. Fails (returns false, leaving
  // *this unspecified) if a shared scalar variable has conflicting values
  // or a variable is scalar on one side and multi-valued on the other.
  // Multi-valued bindings concatenate (other's values appended).
  bool Merge(const Bindings& other);

  // Demotes every scalar binding to a single-element multi-valued binding.
  // Used when an instance enters an aperiodic sequence run.
  Bindings ToMulti() const;

  size_t scalar_count() const { return scalars_.size(); }
  size_t multi_count() const { return multis_.size(); }

  const std::map<std::string, BindingValue>& scalars() const {
    return scalars_;
  }
  const std::map<std::string, std::vector<BindingValue>>& multis() const {
    return multis_;
  }

 private:
  std::map<std::string, BindingValue> scalars_;
  std::map<std::string, std::vector<BindingValue>> multis_;
};

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_BINDING_H_
