// The primitive RFID event (paper §2.1): observation(r, o, t).
//
// A primitive event is a reader observation: reader EPC `r` saw object EPC
// `o` at timestamp `t`. Primitive events are instantaneous
// (t_begin = t_end = t) and atomic.

#ifndef RFIDCEP_EVENTS_OBSERVATION_H_
#define RFIDCEP_EVENTS_OBSERVATION_H_

#include <string>

#include "common/time.h"

namespace rfidcep::events {

struct Observation {
  std::string reader;  // Reader EPC (e.g. "urn:epc:id:sgln:..." or "r1").
  std::string object;  // Object EPC (e.g. "urn:epc:id:sgtin:..." or "o1").
  TimePoint timestamp = 0;

  friend bool operator==(const Observation& a, const Observation& b) {
    return a.reader == b.reader && a.object == b.object &&
           a.timestamp == b.timestamp;
  }
};

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_OBSERVATION_H_
