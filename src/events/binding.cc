#include "events/binding.h"

#include <algorithm>
#include <cassert>

namespace rfidcep::events {

namespace {

// splitmix64 finalizer: full-avalanche mixing of a 64-bit state.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const char* data, size_t size) {
  // FNV-1a, then an avalanche pass (FNV alone mixes low bits poorly).
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

template <typename Entries>
auto LowerBound(Entries& entries, SymbolId var) {
  return std::lower_bound(
      entries.begin(), entries.end(), var,
      [](const auto& entry, SymbolId v) { return entry.first < v; });
}

}  // namespace

std::string BindingValueToString(const BindingValue& value) {
  if (const std::string* s = std::get_if<std::string>(&value)) return *s;
  return FormatTimePoint(std::get<TimePoint>(value));
}

uint64_t HashBindingValue(const BindingValue& value) {
  uint64_t h;
  if (const std::string* s = std::get_if<std::string>(&value)) {
    h = HashBytes(s->data(), s->size());
  } else {
    h = Mix64(0x7465u ^  // Type tag: timestamps never alias strings.
              static_cast<uint64_t>(std::get<TimePoint>(value)));
  }
  return h != kWildcardJoinKey ? h : 1;
}

void Bindings::BindScalar(SymbolId var, BindingValue value) {
  auto it = LowerBound(scalars_, var);
  if (it != scalars_.end() && it->first == var) {
    it->second = std::move(value);
  } else {
    scalars_.emplace(it, var, std::move(value));
  }
}

void Bindings::BindMulti(SymbolId var, BindingValue value) {
  auto it = LowerBound(multis_, var);
  if (it == multis_.end() || it->first != var) {
    it = multis_.emplace(it, var, std::vector<BindingValue>());
  }
  it->second.push_back(std::move(value));
}

const BindingValue* Bindings::FindScalar(SymbolId var) const {
  auto it = LowerBound(scalars_, var);
  if (it == scalars_.end() || it->first != var) return nullptr;
  return &it->second;
}

const std::vector<BindingValue>* Bindings::FindMulti(SymbolId var) const {
  auto it = LowerBound(multis_, var);
  if (it == multis_.end() || it->first != var) return nullptr;
  return &it->second;
}

const BindingValue& Bindings::Scalar(SymbolId var) const {
  const BindingValue* value = FindScalar(var);
  assert(value != nullptr);
  return *value;
}

const std::vector<BindingValue>& Bindings::Multi(SymbolId var) const {
  const std::vector<BindingValue>* values = FindMulti(var);
  assert(values != nullptr);
  return *values;
}

namespace {

// True if the sorted entry ranges share no SymbolId.
template <typename A, typename B>
bool Disjoint(const A& a, const B& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

bool Bindings::UnifiesWith(const Bindings& other) const {
  // Shared scalars must agree.
  auto ia = scalars_.begin();
  auto ib = other.scalars_.begin();
  while (ia != scalars_.end() && ib != other.scalars_.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      if (ia->second != ib->second) return false;
      ++ia;
      ++ib;
    }
  }
  // No variable may be scalar on one side and multi-valued on the other.
  return Disjoint(scalars_, other.multis_) && Disjoint(multis_, other.scalars_);
}

bool Bindings::Merge(const Bindings& other) {
  if (!UnifiesWith(other)) return false;
  for (const auto& [var, value] : other.scalars_) {
    auto it = LowerBound(scalars_, var);
    if (it == scalars_.end() || it->first != var) {
      scalars_.emplace(it, var, value);
    }
  }
  for (const auto& [var, values] : other.multis_) {
    auto it = LowerBound(multis_, var);
    if (it == multis_.end() || it->first != var) {
      multis_.emplace(it, var, values);
    } else {
      it->second.insert(it->second.end(), values.begin(), values.end());
    }
  }
  return true;
}

bool Bindings::Merge(Bindings&& other) {
  if (!UnifiesWith(other)) return false;
  if (scalars_.empty() && multis_.empty()) {
    *this = std::move(other);
    return true;
  }
  for (auto& [var, value] : other.scalars_) {
    auto it = LowerBound(scalars_, var);
    if (it == scalars_.end() || it->first != var) {
      scalars_.emplace(it, var, std::move(value));
    }
  }
  for (auto& [var, values] : other.multis_) {
    auto it = LowerBound(multis_, var);
    if (it == multis_.end() || it->first != var) {
      multis_.emplace(it, var, std::move(values));
    } else {
      it->second.insert(it->second.end(),
                        std::make_move_iterator(values.begin()),
                        std::make_move_iterator(values.end()));
    }
  }
  return true;
}

Bindings Bindings::ToMulti() const {
  Bindings out;
  out.multis_ = multis_;
  for (const auto& [var, value] : scalars_) {
    auto it = LowerBound(out.multis_, var);
    if (it == out.multis_.end() || it->first != var) {
      it = out.multis_.emplace(it, var, std::vector<BindingValue>());
    }
    it->second.push_back(value);
  }
  return out;
}

uint64_t ComputeJoinKey(const Bindings& bindings, const SymbolId* vars,
                        size_t num_vars, bool* complete) {
  *complete = true;
  uint64_t key = 0x243f6a8885a308d3ull;  // Arbitrary nonzero seed.
  for (size_t i = 0; i < num_vars; ++i) {
    const BindingValue* value = bindings.FindScalar(vars[i]);
    if (value == nullptr) {
      *complete = false;
      return kWildcardJoinKey;
    }
    key = Mix64(key ^ HashBindingValue(*value));
  }
  return key != kWildcardJoinKey ? key : 1;
}

}  // namespace rfidcep::events
