#include "events/binding.h"

#include <cassert>

namespace rfidcep::events {

std::string BindingValueToString(const BindingValue& value) {
  if (const std::string* s = std::get_if<std::string>(&value)) return *s;
  return FormatTimePoint(std::get<TimePoint>(value));
}

void Bindings::BindScalar(const std::string& var, BindingValue value) {
  scalars_[var] = std::move(value);
}

void Bindings::BindMulti(const std::string& var, BindingValue value) {
  multis_[var].push_back(std::move(value));
}

bool Bindings::HasScalar(const std::string& var) const {
  return scalars_.count(var) > 0;
}

bool Bindings::HasMulti(const std::string& var) const {
  return multis_.count(var) > 0;
}

const BindingValue& Bindings::Scalar(const std::string& var) const {
  auto it = scalars_.find(var);
  assert(it != scalars_.end());
  return it->second;
}

const std::vector<BindingValue>& Bindings::Multi(const std::string& var) const {
  auto it = multis_.find(var);
  assert(it != multis_.end());
  return it->second;
}

bool Bindings::Merge(const Bindings& other) {
  for (const auto& [var, value] : other.scalars_) {
    if (multis_.count(var) > 0) return false;
    auto it = scalars_.find(var);
    if (it != scalars_.end()) {
      if (it->second != value) return false;
    } else {
      scalars_.emplace(var, value);
    }
  }
  for (const auto& [var, values] : other.multis_) {
    if (scalars_.count(var) > 0) return false;
    auto& mine = multis_[var];
    mine.insert(mine.end(), values.begin(), values.end());
  }
  return true;
}

Bindings Bindings::ToMulti() const {
  Bindings out;
  out.multis_ = multis_;
  for (const auto& [var, value] : scalars_) {
    out.multis_[var].push_back(value);
  }
  return out;
}

}  // namespace rfidcep::events
