// Complex event expressions (paper §2.2).
//
// An EventExpr is an immutable AST node combining constituent events with
// one of the paper's constructors:
//
//   non-temporal: OR (∨), AND (∧), NOT (¬)
//   temporal:     SEQ (;), TSEQ (:, distance-constrained),
//                 SEQ+ (;+, aperiodic), TSEQ+ (:+, distance-constrained
//                 aperiodic), WITHIN (interval constraint)
//
// We normalize SEQ = TSEQ with distance bounds [0, ∞) and SEQ+ = TSEQ+
// with bounds [0, ∞): one node kind per family, carrying its bounds.
// WITHIN(E, τ) is not a node of its own — per §4.3 it is an *interval
// constraint attribute* of E's node (`within`), tightened by min() when
// constraints nest, and later propagated down the event graph.
//
// Expressions are shared immutable trees (shared_ptr<const EventExpr>);
// `CanonicalKey()` gives a structural fingerprint used for common-subgraph
// merging (§4.3).

#ifndef RFIDCEP_EVENTS_EXPR_H_
#define RFIDCEP_EVENTS_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "events/event_type.h"

namespace rfidcep::events {

enum class ExprOp {
  kPrimitive,  // Leaf: a primitive event type.
  kOr,         // E1 ∨ E2 (n-ary).
  kAnd,        // E1 ∧ E2 (binary).
  kNot,        // ¬E1.
  kSeq,        // E1 ; E2 with dist(e1,e2) ∈ [dist_lo, dist_hi].
  kSeqPlus,    // One or more E1 with adjacent dist ∈ [dist_lo, dist_hi].
};

std::string_view ExprOpName(ExprOp op);

class EventExpr;
using EventExprPtr = std::shared_ptr<const EventExpr>;

class EventExpr {
 public:
  // --- Factories -----------------------------------------------------------
  static EventExprPtr Primitive(PrimitiveEventType type);
  static EventExprPtr Or(EventExprPtr a, EventExprPtr b);
  static EventExprPtr Or(std::vector<EventExprPtr> children);
  static EventExprPtr And(EventExprPtr a, EventExprPtr b);
  static EventExprPtr Not(EventExprPtr a);
  static EventExprPtr Seq(EventExprPtr first, EventExprPtr second);
  static EventExprPtr Tseq(EventExprPtr first, EventExprPtr second,
                           Duration dist_lo, Duration dist_hi);
  static EventExprPtr SeqPlus(EventExprPtr child);
  static EventExprPtr TseqPlus(EventExprPtr child, Duration dist_lo,
                               Duration dist_hi);
  // WITHIN(expr, tau): returns `expr` with its interval constraint tightened
  // to min(existing, tau).
  static EventExprPtr Within(EventExprPtr expr, Duration tau);

  // --- Accessors -----------------------------------------------------------
  ExprOp op() const { return op_; }
  const PrimitiveEventType& primitive() const { return primitive_; }
  const std::vector<EventExprPtr>& children() const { return children_; }
  Duration dist_lo() const { return dist_lo_; }
  Duration dist_hi() const { return dist_hi_; }
  // Interval constraint from WITHIN; kDurationInfinity when unconstrained.
  Duration within() const { return within_; }
  bool has_within() const { return within_ != kDurationInfinity; }

  // Structural fingerprint: equal keys <=> detectably identical events.
  // Example: "SEQ[10sec,20sec]{<=inf}(SEQ+[0.1sec,1sec](obs(...)),obs(...))".
  std::string CanonicalKey() const;

  // Human-readable form using the paper's constructor names (SEQ vs TSEQ
  // chosen by whether distance bounds are trivial, WITHIN printed as a
  // wrapper).
  std::string ToString() const;

 private:
  EventExpr() = default;

  ExprOp op_ = ExprOp::kPrimitive;
  PrimitiveEventType primitive_;
  std::vector<EventExprPtr> children_;
  Duration dist_lo_ = 0;
  Duration dist_hi_ = kDurationInfinity;
  Duration within_ = kDurationInfinity;
};

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_EXPR_H_
