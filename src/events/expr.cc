#include "events/expr.h"

namespace rfidcep::events {

std::string_view ExprOpName(ExprOp op) {
  switch (op) {
    case ExprOp::kPrimitive:
      return "PRIM";
    case ExprOp::kOr:
      return "OR";
    case ExprOp::kAnd:
      return "AND";
    case ExprOp::kNot:
      return "NOT";
    case ExprOp::kSeq:
      return "SEQ";
    case ExprOp::kSeqPlus:
      return "SEQ+";
  }
  return "?";
}

EventExprPtr EventExpr::Primitive(PrimitiveEventType type) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  e->op_ = ExprOp::kPrimitive;
  e->primitive_ = std::move(type);
  return e;
}

EventExprPtr EventExpr::Or(EventExprPtr a, EventExprPtr b) {
  return Or(std::vector<EventExprPtr>{std::move(a), std::move(b)});
}

EventExprPtr EventExpr::Or(std::vector<EventExprPtr> children) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  e->op_ = ExprOp::kOr;
  e->children_ = std::move(children);
  return e;
}

EventExprPtr EventExpr::And(EventExprPtr a, EventExprPtr b) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  e->op_ = ExprOp::kAnd;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

EventExprPtr EventExpr::Not(EventExprPtr a) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  e->op_ = ExprOp::kNot;
  e->children_ = {std::move(a)};
  return e;
}

EventExprPtr EventExpr::Seq(EventExprPtr first, EventExprPtr second) {
  return Tseq(std::move(first), std::move(second), 0, kDurationInfinity);
}

EventExprPtr EventExpr::Tseq(EventExprPtr first, EventExprPtr second,
                             Duration dist_lo, Duration dist_hi) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  e->op_ = ExprOp::kSeq;
  e->children_ = {std::move(first), std::move(second)};
  e->dist_lo_ = dist_lo;
  e->dist_hi_ = dist_hi;
  return e;
}

EventExprPtr EventExpr::SeqPlus(EventExprPtr child) {
  return TseqPlus(std::move(child), 0, kDurationInfinity);
}

EventExprPtr EventExpr::TseqPlus(EventExprPtr child, Duration dist_lo,
                                 Duration dist_hi) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  e->op_ = ExprOp::kSeqPlus;
  e->children_ = {std::move(child)};
  e->dist_lo_ = dist_lo;
  e->dist_hi_ = dist_hi;
  return e;
}

EventExprPtr EventExpr::Within(EventExprPtr expr, Duration tau) {
  auto e = std::shared_ptr<EventExpr>(new EventExpr());
  // Shallow copy: children remain shared, the within attribute tightens.
  *e = *expr;
  e->within_ = std::min(expr->within_, tau);
  return e;
}

std::string EventExpr::CanonicalKey() const {
  std::string out(ExprOpName(op_));
  if (op_ == ExprOp::kSeq || op_ == ExprOp::kSeqPlus) {
    out += "[" + FormatDuration(dist_lo_) + "," + FormatDuration(dist_hi_) +
           "]";
  }
  if (has_within()) {
    out += "{<=" + FormatDuration(within_) + "}";
  }
  if (op_ == ExprOp::kPrimitive) {
    out += primitive_.CanonicalKey();
    return out;
  }
  out += "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += ",";
    out += children_[i]->CanonicalKey();
  }
  out += ")";
  return out;
}

std::string EventExpr::ToString() const {
  std::string body;
  switch (op_) {
    case ExprOp::kPrimitive:
      body = primitive_.ToRuleSyntax();
      break;
    case ExprOp::kOr: {
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) body += " OR ";
        body += children_[i]->ToString();
      }
      body = "(" + body + ")";
      break;
    }
    case ExprOp::kAnd:
      body = "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
      break;
    case ExprOp::kNot:
      body = "NOT " + children_[0]->ToString();
      break;
    case ExprOp::kSeq: {
      bool trivial = dist_lo_ == 0 && dist_hi_ == kDurationInfinity;
      if (trivial) {
        body = "SEQ(" + children_[0]->ToString() + "; " +
               children_[1]->ToString() + ")";
      } else {
        body = "TSEQ(" + children_[0]->ToString() + "; " +
               children_[1]->ToString() + ", " + FormatDuration(dist_lo_) +
               ", " + FormatDuration(dist_hi_) + ")";
      }
      break;
    }
    case ExprOp::kSeqPlus: {
      bool trivial = dist_lo_ == 0 && dist_hi_ == kDurationInfinity;
      if (trivial) {
        body = "SEQ+(" + children_[0]->ToString() + ")";
      } else {
        body = "TSEQ+(" + children_[0]->ToString() + ", " +
               FormatDuration(dist_lo_) + ", " + FormatDuration(dist_hi_) +
               ")";
      }
      break;
    }
  }
  if (has_within()) {
    return "WITHIN(" + body + ", " + FormatDuration(within_) + ")";
  }
  return body;
}

}  // namespace rfidcep::events
