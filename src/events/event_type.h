// Primitive event types (paper §2.1).
//
// A primitive event type classifies observations by reader and object:
//
//   E = observation(r, o, t), group(r)='g1', type(o)='case'
//
// The reader/object positions are *terms*: either a quoted literal
// ('r1') or a variable (r, o1) that binds the attribute for use in joins
// and actions. group() and type() are the user-defined mapping functions
// from epc/catalog.h, supplied through an Environment.
//
// Per the paper, a literal reader term observation('r1', o, t) defaults to
// group(r) = 'r1' with each unregistered reader forming its own singleton
// group; we therefore match a reader literal L when obs.reader == L or
// group(obs.reader) == L.

#ifndef RFIDCEP_EVENTS_EVENT_TYPE_H_
#define RFIDCEP_EVENTS_EVENT_TYPE_H_

#include <optional>
#include <string>
#include <string_view>

#include "epc/catalog.h"
#include "events/binding.h"
#include "events/observation.h"
#include "events/symbol.h"

namespace rfidcep::events {

// Resolution context for the user-defined functions group(r) and type(o).
// Null members fall back to the paper defaults: group(r) = r, type(o) = "".
struct Environment {
  const epc::ProductCatalog* catalog = nullptr;
  const epc::ReaderRegistry* readers = nullptr;

  std::string TypeOf(std::string_view object_epc) const {
    return catalog != nullptr ? catalog->TypeOf(object_epc) : std::string();
  }
  std::string GroupOf(std::string_view reader_epc) const {
    return readers != nullptr ? readers->GroupOf(reader_epc)
                              : std::string(reader_epc);
  }
  // Allocation-free variant for the per-observation path; the view aliases
  // the registry or `reader_epc` itself.
  std::string_view GroupViewOf(std::string_view reader_epc) const {
    return readers != nullptr ? readers->GroupViewOf(reader_epc) : reader_epc;
  }
  // Allocation-free type(o); the view aliases the catalog and is empty
  // for unknown EPCs (or when there is no catalog).
  std::string_view TypeViewOf(std::string_view object_epc) const {
    return catalog != nullptr ? catalog->TypeViewOf(object_epc)
                              : std::string_view();
  }
};

// A reader/object position in observation(r, o, t): literal or variable.
struct Term {
  bool is_literal = false;
  std::string text;  // Literal value or variable name.

  static Term Literal(std::string value) { return {true, std::move(value)}; }
  static Term Variable(std::string name) { return {false, std::move(name)}; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.is_literal == b.is_literal && a.text == b.text;
  }
};

class PrimitiveEventType {
 public:
  PrimitiveEventType() = default;
  // Interns every variable name (the parser constructs types at Compile()
  // time), so Bind() works purely with SymbolIds per observation.
  PrimitiveEventType(Term reader, Term object, std::string time_var);

  // Adds the constraint group(reader) = `group`.
  PrimitiveEventType& WithGroup(std::string group) {
    group_constraint_ = std::move(group);
    return *this;
  }
  // Adds the constraint type(object) = `type_name`.
  PrimitiveEventType& WithObjectType(std::string type_name) {
    type_constraint_ = std::move(type_name);
    return *this;
  }

  // True if `obs` is an instance of this type under `env`.
  bool Matches(const Observation& obs, const Environment& env) const;

  // Variable bindings produced by a successful match.
  Bindings Bind(const Observation& obs) const;

  // Canonical rendering used for common-subgraph merging, e.g.
  // "obs('r1',o,t1)" or "obs(r,o,t),group='g1',type='case'".
  std::string CanonicalKey() const;

  // Rule-language rendering that reparses to an equivalent type, e.g.
  // `observation("r1", o, t1), type(o) = "case"`.
  std::string ToRuleSyntax() const;

  const Term& reader() const { return reader_; }
  const Term& object() const { return object_; }
  const std::string& time_var() const { return time_var_; }
  const std::optional<std::string>& group_constraint() const {
    return group_constraint_;
  }
  const std::optional<std::string>& type_constraint() const {
    return type_constraint_;
  }

  // Interned variable ids; kInvalidSymbol when the term is a literal or
  // the variable is empty. `reader_location_sym()` is the derived
  // `<reader_var>_location` binding the detector attaches per match.
  SymbolId reader_sym() const { return reader_sym_; }
  SymbolId object_sym() const { return object_sym_; }
  SymbolId time_sym() const { return time_sym_; }
  SymbolId reader_location_sym() const { return reader_location_sym_; }

 private:
  Term reader_;
  Term object_;
  std::string time_var_;
  std::optional<std::string> group_constraint_;
  std::optional<std::string> type_constraint_;
  SymbolId reader_sym_ = kInvalidSymbol;
  SymbolId object_sym_ = kInvalidSymbol;
  SymbolId time_sym_ = kInvalidSymbol;
  SymbolId reader_location_sym_ = kInvalidSymbol;
};

}  // namespace rfidcep::events

#endif  // RFIDCEP_EVENTS_EVENT_TYPE_H_
