// Tenants: one named RCEDA engine per site behind the daemon.
//
// A tenant owns the full durable stack for one deployment — in-memory
// RFID store, store WAL, compiled engine — plus its slice of the state
// directory. Open() rebuilds the stack in recovery order (WAL replay
// into a fresh store, dedup-map attach, compile, snapshot restore), so
// a restarted daemon resumes exactly where the last checkpoint left it;
// the snapshot is layout-portable, so the restart may change the shard
// count or dispatch mode (docs/recovery.md). The server drives a tenant
// only through the narrow engine::EngineFrontend surface and the
// checkpoint entry point; one mutex per tenant serializes connections
// feeding the same engine, and the engine's own bounded rings provide
// backpressure below it.

#ifndef RFIDCEP_SERVER_TENANT_H_
#define RFIDCEP_SERVER_TENANT_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "store/database.h"
#include "store/wal.h"

namespace rfidcep::server {

struct TenantConfig {
  std::string name;
  // Exactly one of the two: a rule program file, or inline rule text
  // (tests and embedders).
  std::string rules_file;
  std::string rules_text;
  int shards = 1;
  engine::PartitionMode partition = engine::PartitionMode::kRule;
  bool async_actions = false;
  // When true (default) the tenant gets an RFID store + WAL; rules with
  // SQL actions require it.
  bool store = true;
  bool tolerate_out_of_order = false;
};

// Parses the daemon's tenant config: one tenant per line,
//   tenant <name> rules=<file> [shards=N] [partition=rule|data]
//          [async=0|1] [store=0|1] [tolerate_out_of_order=0|1]
// Blank lines and '#' comments are skipped. Relative rules paths
// resolve against the config file's directory.
Result<std::vector<TenantConfig>> ParseTenantConfigFile(
    const std::string& path);
Result<std::vector<TenantConfig>> ParseTenantConfigText(
    std::string_view text, const std::string& base_dir);

class Tenant {
 public:
  // Builds and recovers the tenant under `state_dir/<name>/`:
  // wal/ holds the store WAL, checkpoint.snap the latest snapshot.
  static Result<std::unique_ptr<Tenant>> Open(TenantConfig config,
                                              const std::string& state_dir);

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return config_.name; }
  const TenantConfig& config() const { return config_; }

  // The daemon-facing surface. Callers hold mu() around streaming and
  // checkpoint calls; the engine itself is single-caller.
  engine::EngineFrontend& frontend() { return *engine_; }
  // Full engine access for in-process embedders (tests register
  // procedures, inspect layout); the daemon itself stays on frontend().
  engine::RcedaEngine& engine() { return *engine_; }

  std::mutex& mu() { return mu_; }

  // Serializes engine state (which syncs the WAL first) and atomically
  // replaces checkpoint.snap. The durability point of the SIGTERM path.
  Status Checkpoint();

  // True when Open() found and restored a previous checkpoint.
  bool restored() const { return restored_; }
  const std::string& checkpoint_path() const { return checkpoint_path_; }

 private:
  explicit Tenant(TenantConfig config) : config_(std::move(config)) {}

  const TenantConfig config_;
  std::string checkpoint_path_;
  bool restored_ = false;
  std::mutex mu_;
  // Destruction order matters: the engine drains its action stage into
  // the WAL, so it must die before the WAL, which must die before the
  // database it logically belongs to.
  std::unique_ptr<store::Database> db_;
  std::unique_ptr<store::Wal> wal_;
  std::unique_ptr<engine::RcedaEngine> engine_;
};

}  // namespace rfidcep::server

#endif  // RFIDCEP_SERVER_TENANT_H_
