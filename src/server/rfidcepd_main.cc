// rfidcepd: RCEDA complex event detection as a long-running daemon.
//
//   rfidcepd --config=tenants.conf --state-dir=/var/lib/rfidcep
//            [--host=127.0.0.1] [--port=7411] [--http-port=7412]
//            [--max-connections=64] [--port-file=PATH]
//
// The config file defines one tenant (site) per line — see
// docs/server.md. Observations arrive over the binary protocol on
// --port; Prometheus metrics and /healthz are served on --http-port.
// SIGTERM or SIGINT drains connections, checkpoints every tenant into
// the state directory, and exits 0; the next start resumes from those
// checkpoints. --port-file writes "<port> <http_port>\n" after binding,
// for supervisors that asked for ephemeral ports.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  // Async-signal-safe: just wake the main thread.
  (void)!::write(g_signal_pipe[1], "x", 1);
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config=FILE --state-dir=DIR [--host=ADDR] "
               "[--port=N] [--http-port=N] [--max-connections=N] "
               "[--port-file=PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using rfidcep::server::Server;
  using rfidcep::server::ServerOptions;
  using rfidcep::server::TenantConfig;

  std::string config_path;
  std::string port_file;
  ServerOptions options;
  options.port = 7411;
  options.http_port = 7412;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--config", &config_path)) {
    } else if (FlagValue(argv[i], "--state-dir", &options.state_dir)) {
    } else if (FlagValue(argv[i], "--host", &options.host)) {
    } else if (FlagValue(argv[i], "--port-file", &port_file)) {
    } else if (FlagValue(argv[i], "--port", &value)) {
      options.port = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--http-port", &value)) {
      options.http_port = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--max-connections", &value)) {
      options.max_connections = std::atoi(value.c_str());
    } else {
      return Usage(argv[0]);
    }
  }
  if (config_path.empty() || options.state_dir.empty()) return Usage(argv[0]);

  rfidcep::Result<std::vector<TenantConfig>> tenants =
      rfidcep::server::ParseTenantConfigFile(config_path);
  if (!tenants.ok()) {
    std::fprintf(stderr, "rfidcepd: %s\n",
                 tenants.status().message().c_str());
    return 1;
  }

  Server server(options);
  for (TenantConfig& config : *tenants) {
    const std::string name = config.name;
    rfidcep::Status status = server.AddTenant(std::move(config));
    if (!status.ok()) {
      std::fprintf(stderr, "rfidcepd: %s\n", status.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "rfidcepd: tenant '%s' %s\n", name.c_str(),
                 server.tenant(name)->restored()
                     ? "restored from checkpoint"
                     : "started fresh");
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("rfidcepd: pipe");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  if (rfidcep::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "rfidcepd: %s\n", status.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "rfidcepd: listening on %s:%d (metrics :%d)\n",
               options.host.c_str(), server.bound_port(), server.http_port());
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d %d\n", server.bound_port(), server.http_port());
      std::fclose(f);
    }
  }

  // Park until a signal arrives; poll tolerates EINTR from the handler.
  for (;;) {
    pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
    int n = ::poll(&pfd, 1, -1);
    if (n > 0 || (n < 0 && errno != EINTR)) break;
  }

  std::fprintf(stderr, "rfidcepd: draining and checkpointing...\n");
  rfidcep::Status status = server.Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "rfidcepd: checkpoint failed: %s\n",
                 status.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "rfidcepd: checkpointed %zu tenant(s); exiting\n",
               server.num_tenants());
  return 0;
}
