#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace rfidcep::server {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// Writes all of `bytes` to `fd`. False when the peer is gone.
bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

int Listen(const std::string& host, int port, int backlog, int* bound_port,
           Status* status) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *status = Errno("socket");
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *status = Status::InvalidArgument("bad listen host " + host);
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    *status = Errno("bind/listen " + host + ":" + std::to_string(port));
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

// Splices a tenant label into one Prometheus sample line:
//   name{a="b"} v  ->  name{tenant="t",a="b"} v
//   name v         ->  name{tenant="t"} v
std::string LabelSample(const std::string& line, const std::string& tenant) {
  const std::string label = "tenant=\"" + tenant + "\"";
  size_t brace = line.find('{');
  size_t space = line.find(' ');
  if (brace != std::string::npos && (space == std::string::npos ||
                                     brace < space)) {
    return line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
  }
  if (space == std::string::npos) return line;  // Not a sample line.
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  instruments_.connections = registry_.GetCounter("rfidcepd_connections_total");
  instruments_.rejected =
      registry_.GetCounter("rfidcepd_rejected_connections_total");
  instruments_.frames = registry_.GetCounter("rfidcepd_frames_total");
  instruments_.observations =
      registry_.GetCounter("rfidcepd_observations_total");
  instruments_.protocol_errors =
      registry_.GetCounter("rfidcepd_protocol_errors_total");
  instruments_.ingest_stalls =
      registry_.GetCounter("rfidcepd_ingest_stalls_total");
  instruments_.checkpoints = registry_.GetCounter("rfidcepd_checkpoints_total");
  instruments_.active = registry_.GetGauge("rfidcepd_connections_active");
}

Server::~Server() {
  if (started_ && !stopped_) {
    // Stop serving without the checkpoint pass: destruction is the
    // crash-like path; Shutdown() is the graceful one.
    stopping_.store(true);
    if (wake_pipe_[1] >= 0) (void)!::write(wake_pipe_[1], "x", 1);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    if (http_thread_.joinable()) http_thread_.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      threads.swap(conn_threads_);
    }
    for (std::thread& t : threads) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

Status Server::AddTenant(TenantConfig config) {
  if (started_) {
    return Status::FailedPrecondition("AddTenant after Start()");
  }
  std::string name = config.name;
  if (name.empty() || name.size() > kMaxTenantNameBytes) {
    return Status::InvalidArgument("bad tenant name '" + name + "'");
  }
  if (tenants_.count(name) != 0) {
    return Status::InvalidArgument("duplicate tenant '" + name + "'");
  }
  Result<std::unique_ptr<Tenant>> tenant =
      Tenant::Open(std::move(config), options_.state_dir);
  if (!tenant.ok()) {
    return Status(tenant.status().code(),
                  "tenant '" + name + "': " + tenant.status().message());
  }
  tenants_.emplace(std::move(name), std::move(*tenant));
  return Status::Ok();
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("Start() twice");
  if (tenants_.empty()) {
    return Status::FailedPrecondition("no tenants configured");
  }
  if (::pipe(wake_pipe_) != 0) return Errno("pipe");
  Status status;
  // listen() backlog is the bounded accept queue: a burst beyond it is
  // refused by the kernel before the daemon ever sees it.
  listen_fd_ = Listen(options_.host, options_.port, /*backlog=*/16,
                      &bound_port_, &status);
  if (listen_fd_ < 0) return status;
  if (options_.http_port >= 0) {
    http_fd_ = Listen(options_.host, options_.http_port, /*backlog=*/16,
                      &http_bound_port_, &status);
    if (http_fd_ < 0) return status;
    http_thread_ = std::thread([this] { HttpLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

Status Server::Shutdown() {
  if (!started_ || stopped_) return Status::Ok();
  stopping_.store(true);
  (void)!::write(wake_pipe_[1], "x", 1);
  {
    // In-flight frames finish (HandleFrame holds the tenant mutex);
    // the reads after them fail fast.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (http_thread_.joinable()) http_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  stopped_ = true;
  return CheckpointAll();
}

Status Server::CheckpointAll() {
  Status first_error;
  for (auto& [name, tenant] : tenants_) {
    std::lock_guard<std::mutex> lock(tenant->mu());
    Status status = tenant->Checkpoint();
    if (status.ok()) {
      instruments_.checkpoints->Increment();
    } else if (first_error.ok()) {
      first_error = Status(status.code(),
                           "tenant '" + name + "': " + status.message());
    }
  }
  return first_error;
}

Tenant* Server::tenant(std::string_view name) {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load() || (fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load() ||
        conn_fds_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Bounded accept: over capacity (or draining), the client gets a
      // clean protocol error instead of a wedged connection.
      instruments_.rejected->Increment();
      SendAll(fd, EncodeError(Status::FailedPrecondition(
                      stopping_.load() ? "server draining"
                                       : "server at connection capacity")));
      ::close(fd);
      continue;
    }
    instruments_.connections->Increment();
    instruments_.active->Add(1);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

bool Server::HandleFrame(int fd, Tenant* tenant, const Frame& frame,
                         uint64_t seq) {
  instruments_.frames->Increment();
  engine::EngineFrontend& engine = tenant->frontend();
  // Serialize connections feeding one tenant; a contended engine is a
  // slow-reader stall worth counting before we block on it.
  std::unique_lock<std::mutex> lock(tenant->mu(), std::try_to_lock);
  if (!lock.owns_lock()) {
    instruments_.ingest_stalls->Increment();
    lock.lock();
  }
  switch (frame.type) {
    case FrameType::kBatch: {
      std::vector<events::Observation> batch;
      if (Status s = DecodeBatch(frame.body, &batch); !s.ok()) {
        instruments_.protocol_errors->Increment();
        SendAll(fd, EncodeError(s));
        return false;
      }
      if (Status s = engine.ProcessAll(batch); !s.ok()) {
        SendAll(fd, EncodeError(s));
        return false;
      }
      instruments_.observations->Increment(batch.size());
      return SendAll(fd, EncodeAck(seq));
    }
    case FrameType::kAdvance: {
      TimePoint t = 0;
      if (Status s = DecodeAdvance(frame.body, &t); !s.ok()) {
        instruments_.protocol_errors->Increment();
        SendAll(fd, EncodeError(s));
        return false;
      }
      if (Status s = engine.AdvanceTo(t); !s.ok()) {
        SendAll(fd, EncodeError(s));
        return false;
      }
      return SendAll(fd, EncodeAck(seq));
    }
    case FrameType::kFlush: {
      if (Status s = engine.Flush(); !s.ok()) {
        SendAll(fd, EncodeError(s));
        return false;
      }
      return SendAll(fd, EncodeAck(seq));
    }
    case FrameType::kStats: {
      StatsReply reply;
      const engine::EngineStats& stats = engine.stats();
      reply.observations = stats.detector.observations;
      reply.matches = stats.detector.rule_matches;
      reply.rules_fired = stats.rules_fired;
      reply.sql_actions = stats.sql_actions_executed;
      reply.procedures = stats.procedures_invoked;
      reply.fired.reserve(engine.num_rules());
      for (size_t i = 0; i < engine.num_rules(); ++i) {
        const std::string& id = engine.rule(i).id;
        reply.fired.emplace_back(id, engine.FiredCount(id));
      }
      return SendAll(fd, EncodeStatsReply(reply));
    }
    case FrameType::kCheckpoint: {
      if (Status s = tenant->Checkpoint(); !s.ok()) {
        SendAll(fd, EncodeError(s));
        return false;
      }
      instruments_.checkpoints->Increment();
      return SendAll(fd, EncodeAck(seq));
    }
    case FrameType::kPing:
      return SendAll(fd, EncodeAck(seq));
    case FrameType::kAck:
    case FrameType::kError:
    case FrameType::kStatsReply:
      break;  // Server-to-client types from a client: protocol error.
  }
  instruments_.protocol_errors->Increment();
  SendAll(fd, EncodeError(Status::InvalidArgument(
                  "client sent server-only frame type")));
  return false;
}

void Server::ServeConnection(int fd) {
  std::string hello_buffer;
  Tenant* tenant = nullptr;
  FrameReader reader;
  char chunk[64 << 10];
  uint64_t seq = 0;
  bool open = true;

  while (open) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (stopping_.load()) {
      SendAll(fd, EncodeError(Status::FailedPrecondition("server draining")));
      break;
    }
    std::string_view bytes(chunk, static_cast<size_t>(n));

    if (tenant == nullptr) {
      hello_buffer.append(bytes);
      Hello hello;
      size_t consumed = 0;
      std::string error;
      switch (DecodeHello(hello_buffer, &hello, &consumed, &error)) {
        case DecodeResult::kNeedMore:
          continue;
        case DecodeResult::kError:
          instruments_.protocol_errors->Increment();
          SendAll(fd, EncodeError(Status::InvalidArgument(error)));
          open = false;
          continue;
        case DecodeResult::kItem:
          break;
      }
      tenant = this->tenant(hello.tenant);
      if (tenant == nullptr) {
        instruments_.protocol_errors->Increment();
        SendAll(fd, EncodeError(Status::NotFound("unknown tenant '" +
                                                 hello.tenant + "'")));
        open = false;
        continue;
      }
      if (!SendAll(fd, EncodeAck(0))) break;
      reader.Feed(hello_buffer.substr(consumed));
      hello_buffer.clear();
    } else {
      reader.Feed(bytes);
    }

    Frame frame;
    for (;;) {
      DecodeResult result = reader.Next(&frame);
      if (result == DecodeResult::kNeedMore) break;
      if (result == DecodeResult::kError) {
        instruments_.protocol_errors->Increment();
        SendAll(fd, EncodeError(Status::InvalidArgument(reader.error())));
        open = false;
        break;
      }
      ++seq;
      if (!HandleFrame(fd, tenant, frame, seq)) {
        open = false;
        break;
      }
    }
  }

  {
    // Unregister before close: Shutdown() must never shutdown() an fd
    // number the kernel may already have reused.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_.erase(conn_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  ::close(fd);
  instruments_.active->Add(-1);
}

std::string Server::ExportMetrics() const {
  std::string out = registry_.ExportText();
  for (const auto& [name, tenant] : tenants_) {
    std::istringstream in(tenant->frontend().ExportMetrics());
    for (std::string line; std::getline(in, line);) {
      if (line.empty()) continue;
      out += line[0] == '#' ? line : LabelSample(line, name);
      out += '\n';
    }
  }
  return out;
}

void Server::HandleHttp(int fd) {
  std::string request;
  char chunk[4096];
  while (request.size() < (16u << 10) &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(chunk, static_cast<size_t>(n));
  }
  std::istringstream line(request);
  std::string method, path;
  line >> method >> path;
  std::string body;
  std::string status = "200 OK";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    body = ExportMetrics();
  } else if (path == "/healthz") {
    body = stopping_.load() ? "draining\n" : "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: text/plain; version=0.0.4"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  SendAll(fd, response);
  ::close(fd);
}

void Server::HttpLoop() {
  // Scrapes are tiny and rare next to ingest; serving them serially on
  // the listener thread keeps the daemon's thread count predictable.
  while (!stopping_.load()) {
    pollfd fds[2] = {{http_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load() || (fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(http_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleHttp(fd);
  }
}

}  // namespace rfidcep::server
