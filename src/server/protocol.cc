#include "server/protocol.h"

#include <cstring>

#include "common/crc32.h"

namespace rfidcep::server {
namespace {

using common::Crc32;

// Little-endian wire helpers, the WAL codec's style.
class Enc {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str16(std::string_view s) {
    U16(static_cast<uint16_t>(s.size()));
    out_.append(s);
  }
  void Str32(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Dec {
 public:
  explicit Dec(std::string_view data) : data_(data) {}

  uint8_t U8() { return Need(1) ? static_cast<uint8_t>(data_[pos_++]) : 0; }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<uint16_t>(
          v | static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
                  << (8 * i));
    }
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string Str16() { return Bytes(U16()); }
  std::string Str32() { return Bytes(U32()); }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  std::string Bytes(size_t n) {
    if (!Need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what + " body");
}

}  // namespace

std::string EncodeHello(std::string_view tenant) {
  Enc enc;
  enc.U32(kProtocolMagic);
  enc.U16(kProtocolVersion);
  enc.Str16(tenant);
  return enc.Take();
}

std::string EncodeFrame(FrameType type, std::string_view body) {
  Enc payload;
  payload.U8(static_cast<uint8_t>(type));
  std::string bytes = payload.Take();
  bytes.append(body);
  Enc frame;
  frame.U32(static_cast<uint32_t>(bytes.size()));
  frame.U32(Crc32(bytes.data(), bytes.size()));
  std::string out = frame.Take();
  out += bytes;
  return out;
}

std::string EncodeBatch(const std::vector<events::Observation>& batch) {
  Enc enc;
  enc.U32(static_cast<uint32_t>(batch.size()));
  for (const events::Observation& obs : batch) {
    enc.Str16(obs.reader);
    enc.Str16(obs.object);
    enc.I64(obs.timestamp);
  }
  return EncodeFrame(FrameType::kBatch, enc.Take());
}

std::string EncodeAdvance(TimePoint t) {
  Enc enc;
  enc.I64(t);
  return EncodeFrame(FrameType::kAdvance, enc.Take());
}

std::string EncodeAck(uint64_t seq) {
  Enc enc;
  enc.U64(seq);
  return EncodeFrame(FrameType::kAck, enc.Take());
}

std::string EncodeError(const Status& status) {
  Enc enc;
  enc.U32(static_cast<uint32_t>(status.code()));
  enc.Str32(status.message());
  return EncodeFrame(FrameType::kError, enc.Take());
}

std::string EncodeStatsReply(const StatsReply& stats) {
  Enc enc;
  enc.U64(stats.observations);
  enc.U64(stats.matches);
  enc.U64(stats.rules_fired);
  enc.U64(stats.sql_actions);
  enc.U64(stats.procedures);
  enc.U32(static_cast<uint32_t>(stats.fired.size()));
  for (const auto& [rule_id, count] : stats.fired) {
    enc.Str16(rule_id);
    enc.U64(count);
  }
  return EncodeFrame(FrameType::kStatsReply, enc.Take());
}

Status DecodeBatch(std::string_view body,
                   std::vector<events::Observation>* out) {
  Dec dec(body);
  uint32_t count = dec.U32();
  // Each observation costs at least u16+u16+i64 = 12 bytes: a count the
  // remaining bytes cannot possibly hold is rejected before reserving.
  if (!dec.ok() || count > body.size() / 12 + 1) return Malformed("batch");
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; dec.ok() && i < count; ++i) {
    events::Observation obs;
    obs.reader = dec.Str16();
    obs.object = dec.Str16();
    obs.timestamp = dec.I64();
    out->push_back(std::move(obs));
  }
  if (!dec.AtEnd()) return Malformed("batch");
  return Status::Ok();
}

Status DecodeAdvance(std::string_view body, TimePoint* out) {
  Dec dec(body);
  *out = dec.I64();
  if (!dec.AtEnd()) return Malformed("advance");
  return Status::Ok();
}

Status DecodeAck(std::string_view body, uint64_t* out) {
  Dec dec(body);
  *out = dec.U64();
  if (!dec.AtEnd()) return Malformed("ack");
  return Status::Ok();
}

Status DecodeError(std::string_view body, Status* out) {
  Dec dec(body);
  uint32_t code = dec.U32();
  std::string message = dec.Str32();
  if (!dec.AtEnd()) return Malformed("error");
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

Status DecodeStatsReply(std::string_view body, StatsReply* out) {
  Dec dec(body);
  out->observations = dec.U64();
  out->matches = dec.U64();
  out->rules_fired = dec.U64();
  out->sql_actions = dec.U64();
  out->procedures = dec.U64();
  uint32_t count = dec.U32();
  if (!dec.ok() || count > body.size()) return Malformed("stats reply");
  out->fired.clear();
  out->fired.reserve(count);
  for (uint32_t i = 0; dec.ok() && i < count; ++i) {
    std::string rule_id = dec.Str16();
    uint64_t fired = dec.U64();
    out->fired.emplace_back(std::move(rule_id), fired);
  }
  if (!dec.AtEnd()) return Malformed("stats reply");
  return Status::Ok();
}

void FrameReader::Feed(std::string_view bytes) {
  if (!error_.empty()) return;  // Failed streams never resynchronize.
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow with connection lifetime.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > (64u << 10))) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

DecodeResult FrameReader::Fail(std::string message) {
  error_ = std::move(message);
  return DecodeResult::kError;
}

DecodeResult FrameReader::Next(Frame* out) {
  if (!error_.empty()) return DecodeResult::kError;
  std::string_view view = std::string_view(buffer_).substr(pos_);
  if (view.size() < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  Dec header(view.substr(0, kFrameHeaderBytes));
  const uint32_t len = header.U32();
  const uint32_t crc = header.U32();
  if (len == 0) return Fail("empty frame payload");
  if (len > kMaxFrameBytes) {
    return Fail("oversized frame: " + std::to_string(len) + " bytes (cap " +
                std::to_string(kMaxFrameBytes) + ")");
  }
  if (view.size() - kFrameHeaderBytes < len) return DecodeResult::kNeedMore;
  std::string_view payload = view.substr(kFrameHeaderBytes, len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Fail("frame CRC mismatch");
  }
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  const bool known =
      (type >= static_cast<uint8_t>(FrameType::kBatch) &&
       type <= static_cast<uint8_t>(FrameType::kPing)) ||
      (type >= static_cast<uint8_t>(FrameType::kAck) &&
       type <= static_cast<uint8_t>(FrameType::kStatsReply));
  if (!known) return Fail("unknown frame type " + std::to_string(type));
  out->type = static_cast<FrameType>(type);
  out->body.assign(payload.substr(1));
  pos_ += kFrameHeaderBytes + len;
  return DecodeResult::kItem;
}

DecodeResult DecodeHello(std::string_view buffer, Hello* out, size_t* consumed,
                         std::string* error) {
  if (buffer.size() < kHelloPrefixBytes) return DecodeResult::kNeedMore;
  Dec dec(buffer.substr(0, kHelloPrefixBytes));
  const uint32_t magic = dec.U32();
  const uint16_t version = dec.U16();
  const uint16_t tenant_len = dec.U16();
  if (magic != kProtocolMagic) {
    *error = "bad protocol magic";
    return DecodeResult::kError;
  }
  if (version != kProtocolVersion) {
    *error = "unsupported protocol version " + std::to_string(version);
    return DecodeResult::kError;
  }
  if (tenant_len == 0 || tenant_len > kMaxTenantNameBytes) {
    *error = "tenant name length " + std::to_string(tenant_len) +
             " out of range";
    return DecodeResult::kError;
  }
  if (buffer.size() - kHelloPrefixBytes < tenant_len) {
    return DecodeResult::kNeedMore;
  }
  out->version = version;
  out->tenant.assign(buffer.substr(kHelloPrefixBytes, tenant_len));
  *consumed = kHelloPrefixBytes + tenant_len;
  return DecodeResult::kItem;
}

}  // namespace rfidcep::server
