// rfidcepd: the long-running network front-end over RCEDA engines.
//
// One Server owns N named tenants (tenant.h), a TCP listener speaking
// the binary observation protocol (protocol.h), and an HTTP listener
// serving Prometheus /metrics and /healthz. Each accepted connection
// gets a thread; frames are processed strictly in order and each one is
// acknowledged after its engine call returns, so a client's last ack is
// exactly the durable resend boundary across a restart. Backpressure is
// end-to-end and bounded: the engine's SPSC shard/action rings block the
// connection thread, the kernel socket buffers fill, and the client's
// send blocks — nothing in the daemon buffers unboundedly. Connections
// beyond max_connections are rejected with a protocol error (bounded
// accept); contended tenant engines are counted as ingest stalls.
//
// Lifecycle (docs/server.md): Start() binds and serves; Shutdown() —
// the SIGTERM path — stops accepting, fails in-flight connections after
// their current frame, checkpoints every tenant (which syncs the WAL),
// and returns. A new Server over the same state directory resumes from
// those checkpoints, possibly with a different shard layout.

#ifndef RFIDCEP_SERVER_SERVER_H_
#define RFIDCEP_SERVER_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "server/protocol.h"
#include "server/tenant.h"

namespace rfidcep::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;       // 0 binds an ephemeral port; see bound_port().
  int http_port = 0;  // Prometheus/health listener; -1 disables it.
  int max_connections = 64;
  std::string state_dir = ".";  // Per-tenant WALs and checkpoints.
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // Stops serving; does NOT checkpoint (that is Shutdown()).

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Opens (and recovers) one tenant. All tenants before Start().
  Status AddTenant(TenantConfig config);

  // Binds the listeners and begins serving.
  Status Start();

  // Drain-and-checkpoint, shared by SIGTERM and tests: stop accepting,
  // fail open connections after their in-flight frame, join every
  // thread, then checkpoint all tenants. Returns the first checkpoint
  // error but always attempts every tenant. Idempotent.
  Status Shutdown();

  int bound_port() const { return bound_port_; }
  int http_port() const { return http_bound_port_; }

  Tenant* tenant(std::string_view name);
  size_t num_tenants() const { return tenants_.size(); }

  // Server-level counters plus every tenant's engine metrics with a
  // tenant="<name>" label injected (docs/server.md "Metrics").
  std::string ExportMetrics() const;

 private:
  struct Instruments {
    common::Counter* connections;
    common::Counter* rejected;
    common::Counter* frames;
    common::Counter* observations;
    common::Counter* protocol_errors;
    common::Counter* ingest_stalls;
    common::Counter* checkpoints;
    common::Gauge* active;
  };

  void AcceptLoop();
  void HttpLoop();
  void ServeConnection(int fd);
  // One client frame against `tenant`. Returns false when the
  // connection must close (error already sent / peer gone).
  bool HandleFrame(int fd, Tenant* tenant, const Frame& frame, uint64_t seq);
  void HandleHttp(int fd);
  Status CheckpointAll();

  const ServerOptions options_;
  common::MetricsRegistry registry_;
  Instruments instruments_;

  std::map<std::string, std::unique_ptr<Tenant>, std::less<>> tenants_;

  int listen_fd_ = -1;
  int http_fd_ = -1;
  int bound_port_ = -1;
  int http_bound_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  // Written to unblock poll() on stop.

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::thread accept_thread_;
  std::thread http_thread_;
  std::mutex conn_mu_;  // Guards conn_fds_ / conn_threads_.
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace rfidcep::server

#endif  // RFIDCEP_SERVER_SERVER_H_
