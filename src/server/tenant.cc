#include "server/tenant.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "events/event_type.h"

namespace rfidcep::server {
namespace {

namespace fs = std::filesystem;

Status ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return Status::Ok();
}

Status ParseBool(const std::string& key, const std::string& value, bool* out) {
  if (value == "0" || value == "false" || value == "off") {
    *out = false;
    return Status::Ok();
  }
  if (value == "1" || value == "true" || value == "on") {
    *out = true;
    return Status::Ok();
  }
  return Status::InvalidArgument("tenant config: bad boolean " + key + "=" +
                                 value);
}

}  // namespace

Result<std::vector<TenantConfig>> ParseTenantConfigText(
    std::string_view text, const std::string& base_dir) {
  std::vector<TenantConfig> tenants;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word) || word[0] == '#') continue;
    const std::string at = " (line " + std::to_string(line_no) + ")";
    if (word != "tenant") {
      return Status::InvalidArgument("tenant config: expected 'tenant', got '" +
                                     word + "'" + at);
    }
    TenantConfig config;
    if (!(fields >> config.name)) {
      return Status::InvalidArgument("tenant config: missing tenant name" + at);
    }
    for (const TenantConfig& existing : tenants) {
      if (existing.name == config.name) {
        return Status::InvalidArgument("tenant config: duplicate tenant '" +
                                       config.name + "'" + at);
      }
    }
    while (fields >> word) {
      const size_t eq = word.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("tenant config: expected key=value, "
                                       "got '" +
                                       word + "'" + at);
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      if (key == "rules") {
        fs::path p(value);
        config.rules_file =
            p.is_absolute() || base_dir.empty()
                ? value
                : (fs::path(base_dir) / p).string();
      } else if (key == "shards") {
        config.shards = std::atoi(value.c_str());
        if (config.shards < 1) {
          return Status::InvalidArgument("tenant config: bad shards=" + value +
                                         at);
        }
      } else if (key == "partition") {
        if (value == "rule") {
          config.partition = engine::PartitionMode::kRule;
        } else if (value == "data") {
          config.partition = engine::PartitionMode::kData;
        } else {
          return Status::InvalidArgument("tenant config: bad partition=" +
                                         value + at);
        }
      } else if (key == "async") {
        RFIDCEP_RETURN_IF_ERROR(ParseBool(key, value, &config.async_actions));
      } else if (key == "store") {
        RFIDCEP_RETURN_IF_ERROR(ParseBool(key, value, &config.store));
      } else if (key == "tolerate_out_of_order") {
        RFIDCEP_RETURN_IF_ERROR(
            ParseBool(key, value, &config.tolerate_out_of_order));
      } else {
        return Status::InvalidArgument("tenant config: unknown key '" + key +
                                       "'" + at);
      }
    }
    if (config.rules_file.empty()) {
      return Status::InvalidArgument("tenant config: tenant '" + config.name +
                                     "' has no rules= file" + at);
    }
    tenants.push_back(std::move(config));
  }
  if (tenants.empty()) {
    return Status::InvalidArgument("tenant config: no tenants defined");
  }
  return tenants;
}

Result<std::vector<TenantConfig>> ParseTenantConfigFile(
    const std::string& path) {
  std::string text;
  RFIDCEP_RETURN_IF_ERROR(ReadTextFile(path, &text));
  return ParseTenantConfigText(text, fs::path(path).parent_path().string());
}

Result<std::unique_ptr<Tenant>> Tenant::Open(TenantConfig config,
                                             const std::string& state_dir) {
  std::string rules = config.rules_text;
  if (rules.empty()) {
    RFIDCEP_RETURN_IF_ERROR(ReadTextFile(config.rules_file, &rules));
  }

  const fs::path tenant_dir = fs::path(state_dir) / config.name;
  std::error_code ec;
  fs::create_directories(tenant_dir, ec);
  if (ec) {
    return Status::Internal("cannot create tenant state dir " +
                            tenant_dir.string() + ": " + ec.message());
  }

  std::unique_ptr<Tenant> tenant(new Tenant(std::move(config)));
  tenant->checkpoint_path_ = (tenant_dir / "checkpoint.snap").string();

  // Recovery order (docs/recovery.md): replay the surviving WAL into a
  // fresh store, attach it so its dedup map seeds the dispatcher, then
  // compile and restore the snapshot. Any suffix the checkpoint missed
  // is re-derived when clients resend unacknowledged frames.
  if (tenant->config_.store) {
    tenant->db_ = std::make_unique<store::Database>();
    RFIDCEP_RETURN_IF_ERROR(tenant->db_->InstallRfidSchema());
    Result<std::unique_ptr<store::Wal>> wal =
        store::Wal::Open((tenant_dir / "wal").string());
    RFIDCEP_RETURN_IF_ERROR(wal.status());
    tenant->wal_ = std::move(*wal);
    RFIDCEP_RETURN_IF_ERROR(
        store::ReplayWalIntoDatabase(*tenant->wal_, tenant->db_.get())
            .status());
  }

  engine::EngineOptions options;
  options.detector.tolerate_out_of_order =
      tenant->config_.tolerate_out_of_order;
  options.shards = tenant->config_.shards;
  options.partition = tenant->config_.partition;
  options.async_actions = tenant->config_.async_actions;
  tenant->engine_ = std::make_unique<engine::RcedaEngine>(
      tenant->db_.get(), events::Environment{}, options);
  RFIDCEP_RETURN_IF_ERROR(tenant->engine_->AddRulesFromText(rules));
  if (tenant->wal_ != nullptr) {
    RFIDCEP_RETURN_IF_ERROR(tenant->engine_->AttachWal(tenant->wal_.get()));
  }
  RFIDCEP_RETURN_IF_ERROR(tenant->engine_->Compile());

  if (fs::exists(tenant->checkpoint_path_)) {
    std::string bytes;
    RFIDCEP_RETURN_IF_ERROR(ReadTextFile(tenant->checkpoint_path_, &bytes));
    Status restored = tenant->engine_->RestoreState(bytes);
    if (!restored.ok()) {
      return Status(restored.code(), "tenant '" + tenant->config_.name +
                                         "': restoring " +
                                         tenant->checkpoint_path_ + ": " +
                                         restored.message());
    }
    tenant->restored_ = true;
  }
  return tenant;
}

Status Tenant::Checkpoint() {
  std::string bytes;
  // SerializeState syncs the WAL before reading its LSN, so everything
  // the snapshot claims durable really is on disk first.
  RFIDCEP_RETURN_IF_ERROR(engine_->SerializeState(&bytes));
  const std::string tmp = checkpoint_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size())) ||
        !out.flush()) {
      return Status::Internal("cannot write checkpoint " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, checkpoint_path_, ec);
  if (ec) {
    return Status::Internal("cannot replace checkpoint " + checkpoint_path_ +
                            ": " + ec.message());
  }
  return Status::Ok();
}

}  // namespace rfidcep::server
