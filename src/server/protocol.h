// rfidcepd wire protocol: length-prefixed, CRC-framed binary frames
// over a TCP stream (docs/server.md "Protocol").
//
// A connection opens with a fixed hello — magic, protocol version, and
// the tenant name — then carries frames in both directions. Framing is
// deliberately the WAL's: a u32 payload length, a u32 CRC-32 of the
// payload (common/crc32.h, zlib-compatible), then the payload, whose
// first byte is the frame type. A frame that fails any check — header
// truncated by peer close, length over the cap, CRC mismatch, unknown
// type, undecodable body — is unrecoverable for the stream (framing
// gives no resynchronization point), so the decoder latches the error
// and the server fails the connection. The engine behind it is never
// touched by a bad frame.
//
// All integers are little-endian. Strings are u16/u32 length + bytes.

#ifndef RFIDCEP_SERVER_PROTOCOL_H_
#define RFIDCEP_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "events/observation.h"

namespace rfidcep::server {

// "RCEP" as the first four connection bytes.
inline constexpr uint32_t kProtocolMagic = 0x50454352u;
inline constexpr uint16_t kProtocolVersion = 1;
// Frame header: u32 payload length + u32 CRC32(payload).
inline constexpr size_t kFrameHeaderBytes = 8;
// Per-frame payload cap; larger lengths are treated as corruption
// before any allocation happens.
inline constexpr uint32_t kMaxFrameBytes = 4u << 20;
// Hello prefix: u32 magic + u16 version + u16 tenant-name length.
inline constexpr size_t kHelloPrefixBytes = 8;
inline constexpr size_t kMaxTenantNameBytes = 256;

enum class FrameType : uint8_t {
  // Client -> server.
  kBatch = 1,       // u32 count, then per observation:
                    //   u16 reader len + bytes, u16 object len + bytes,
                    //   i64 timestamp (microseconds).
  kAdvance = 2,     // i64 t: AdvanceTo(t).
  kFlush = 3,       // Ends the stream (engine Flush).
  kStats = 4,       // Request a kStatsReply.
  kCheckpoint = 5,  // Checkpoint the tenant now.
  kPing = 6,        // Liveness probe; acked like any frame.
  // Server -> client.
  kAck = 0x80,        // u64: frames processed on this connection so far.
  kError = 0x81,      // u32 status code + u32 message len + message;
                      // the server closes the connection after sending.
  kStatsReply = 0x82,  // See StatsReply.
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::string body;  // Payload minus the type byte.
};

// Per-tenant totals, for clients reconciling a stream end to end.
struct StatsReply {
  uint64_t observations = 0;  // Accepted by the detector.
  uint64_t matches = 0;       // Root completions reported.
  uint64_t rules_fired = 0;   // Matches whose condition held.
  uint64_t sql_actions = 0;
  uint64_t procedures = 0;
  std::vector<std::pair<std::string, uint64_t>> fired;  // Per rule id.
};

// --- Encoding (always succeeds) ---------------------------------------------

std::string EncodeHello(std::string_view tenant);
std::string EncodeFrame(FrameType type, std::string_view body);
std::string EncodeBatch(const std::vector<events::Observation>& batch);
std::string EncodeAdvance(TimePoint t);
std::string EncodeAck(uint64_t seq);
std::string EncodeError(const Status& status);
std::string EncodeStatsReply(const StatsReply& stats);

// --- Decoding ---------------------------------------------------------------

Status DecodeBatch(std::string_view body, std::vector<events::Observation>* out);
Status DecodeAdvance(std::string_view body, TimePoint* out);
Status DecodeAck(std::string_view body, uint64_t* out);
Status DecodeError(std::string_view body, Status* out);
Status DecodeStatsReply(std::string_view body, StatsReply* out);

struct Hello {
  uint16_t version = 0;
  std::string tenant;
};

// Incremental decoders share one result vocabulary: kItem when a
// complete unit was extracted, kNeedMore when the buffered bytes end
// mid-unit (feed more), kError when the stream is unrecoverable.
enum class DecodeResult : uint8_t { kItem, kNeedMore, kError };

// Incremental frame decoder over a raw byte stream. Feed() appends
// whatever recv() produced; Next() extracts complete frames. After
// kError the reader stays failed (error() describes why) and the
// connection must be dropped.
class FrameReader {
 public:
  void Feed(std::string_view bytes);
  DecodeResult Next(Frame* out);
  const std::string& error() const { return error_; }
  // Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  DecodeResult Fail(std::string message);

  std::string buffer_;
  size_t pos_ = 0;
  std::string error_;
};

// Incremental hello decoder, same contract as FrameReader::Next.
// Validates magic, version, and tenant-name length.
DecodeResult DecodeHello(std::string_view buffer, Hello* out,
                         size_t* consumed, std::string* error);

}  // namespace rfidcep::server

#endif  // RFIDCEP_SERVER_PROTOCOL_H_
