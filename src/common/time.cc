#include "common/time.h"

#include <cinttypes>
#include <cstdio>

namespace rfidcep {

std::string FormatTimePoint(TimePoint t) {
  if (t == kTimeInfinity) return "inf";
  char buf[64];
  const char* sign = t < 0 ? "-" : "";
  int64_t abs = t < 0 ? -t : t;
  std::snprintf(buf, sizeof(buf), "%s%" PRId64 ".%06" PRId64 "s", sign,
                abs / kSecond, abs % kSecond);
  return buf;
}

std::string FormatDuration(Duration d) {
  if (d == kDurationInfinity) return "inf";
  if (d < 0) return "-" + FormatDuration(-d);
  char buf[64];
  if (d % kHour == 0 && d != 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "hour", d / kHour);
  } else if (d % kMinute == 0 && d != 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "min", d / kMinute);
  } else if (d % kSecond == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "sec", d / kSecond);
  } else if (d % kMillisecond == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "msec", d / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "usec", d);
  }
  return buf;
}

}  // namespace rfidcep
