// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte
// range — the same checksum zlib's crc32() computes, so non-C++ clients
// can frame-check WAL segments and rfidcepd protocol frames with their
// standard library. Shared by the store WAL and the server framing
// codec so both layers stay bit-compatible.

#ifndef RFIDCEP_COMMON_CRC32_H_
#define RFIDCEP_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace rfidcep::common {

inline uint32_t Crc32(const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace rfidcep::common

#endif  // RFIDCEP_COMMON_CRC32_H_
