// Lightweight error handling for rfidcep (no exceptions, RocksDB-style).
//
// A Status is either OK or carries an error code plus a human-readable
// message. Result<T> couples a Status with a value of type T for functions
// that produce a value or fail.

#ifndef RFIDCEP_COMMON_STATUS_H_
#define RFIDCEP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace rfidcep {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Malformed input (bad EPC, bad duration literal, ...).
  kParseError,        // Rule-language or SQL syntax error.
  kNotFound,          // Missing table, rule, column, catalog entry.
  kAlreadyExists,     // Duplicate rule id, table name, index.
  kOutOfRange,        // Value outside representable range.
  kFailedPrecondition,// Operation invalid in current state (invalid rule, ...).
  kUnimplemented,     // Feature recognized but not supported.
  kInternal,          // Invariant violation inside the library.
};

// Returns a stable lowercase name for `code`, e.g. "invalid_argument".
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T>: value-or-status. Access to value() requires ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : status_(), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define RFIDCEP_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::rfidcep::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

// Evaluates a Result<T> expression; on error returns its status, otherwise
// moves the value into `lhs` (a declaration or assignable lvalue).
#define RFIDCEP_ASSIGN_OR_RETURN(lhs, rexpr)         \
  RFIDCEP_ASSIGN_OR_RETURN_IMPL_(                    \
      RFIDCEP_STATUS_CONCAT_(_res, __LINE__), lhs, rexpr)

#define RFIDCEP_STATUS_CONCAT_INNER_(a, b) a##b
#define RFIDCEP_STATUS_CONCAT_(a, b) RFIDCEP_STATUS_CONCAT_INNER_(a, b)
#define RFIDCEP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace rfidcep

#endif  // RFIDCEP_COMMON_STATUS_H_
