#include "common/metrics.h"

#include <algorithm>
#include <cassert>

namespace rfidcep::common {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  assert(bounds == other.bounds && "merging histograms of different shape");
  if (counts.size() != other.counts.size()) return;
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count();
  snap.sum = sum();
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const std::vector<uint64_t>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<uint64_t>* bounds = [] {
    auto* b = new std::vector<uint64_t>;
    for (uint64_t v = 1; v <= (1ull << 26); v <<= 1) b->push_back(v);
    return b;
  }();
  return *bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.gauge != nullptr || entry.histogram != nullptr) return nullptr;
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.counter != nullptr || entry.histogram != nullptr) return nullptr;
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.counter != nullptr || entry.gauge != nullptr) return nullptr;
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.histogram.get();
}

namespace {

// `rule_x_us{rule="r1"}` + `le="4"` -> `rule_x_us_bucket{rule="r1",le="4"}`.
// `detect_us` + `le="4"` -> `detect_us_bucket{le="4"}`.
std::string SpliceLabel(const std::string& name, const std::string& suffix,
                        const std::string& label) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + suffix + (label.empty() ? "" : "{" + label + "}");
  }
  std::string out = name.substr(0, brace) + suffix + name.substr(brace);
  if (!label.empty()) {
    out.insert(out.size() - 1, "," + label);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      out += name + " " + std::to_string(entry.counter->value()) + "\n";
    } else if (entry.gauge != nullptr) {
      out += name + " " + std::to_string(entry.gauge->value()) + "\n";
    } else if (entry.histogram != nullptr) {
      HistogramSnapshot snap = entry.histogram->Snapshot();
      uint64_t cumulative = 0;
      for (size_t i = 0; i < snap.counts.size(); ++i) {
        cumulative += snap.counts[i];
        std::string le = i < snap.bounds.size()
                             ? std::to_string(snap.bounds[i])
                             : "+Inf";
        out += SpliceLabel(name, "_bucket", "le=\"" + le + "\"") + " " +
               std::to_string(cumulative) + "\n";
      }
      out += SpliceLabel(name, "_sum", "") + " " + std::to_string(snap.sum) +
             "\n";
      out += SpliceLabel(name, "_count", "") + " " +
             std::to_string(snap.count) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) out.emplace_back(name, entry.counter->value());
  }
  return out;  // entries_ is a std::map: already sorted by name.
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace rfidcep::common
