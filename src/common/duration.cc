#include "common/duration.h"

#include <cctype>
#include <cmath>
#include <string>

namespace rfidcep {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<Duration> UnitFactor(std::string_view unit) {
  if (EqualsIgnoreCase(unit, "usec") || EqualsIgnoreCase(unit, "us")) {
    return kMicrosecond;
  }
  if (EqualsIgnoreCase(unit, "msec") || EqualsIgnoreCase(unit, "ms")) {
    return kMillisecond;
  }
  if (EqualsIgnoreCase(unit, "sec") || EqualsIgnoreCase(unit, "s")) {
    return kSecond;
  }
  if (EqualsIgnoreCase(unit, "min") || EqualsIgnoreCase(unit, "m")) {
    return kMinute;
  }
  if (EqualsIgnoreCase(unit, "hour") || EqualsIgnoreCase(unit, "h")) {
    return kHour;
  }
  return Status::InvalidArgument("unknown duration unit '" +
                                 std::string(unit) + "'");
}

}  // namespace

Result<Duration> ParseDuration(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t start = i;
  bool saw_digit = false;
  bool saw_dot = false;
  while (i < text.size()) {
    char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      saw_digit = true;
      ++i;
    } else if (c == '.' && !saw_dot) {
      saw_dot = true;
      ++i;
    } else {
      break;
    }
  }
  if (!saw_digit) {
    return Status::InvalidArgument("duration literal '" + std::string(text) +
                                   "' has no numeric part");
  }
  std::string number(text.substr(start, i - start));

  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t unit_start = i;
  while (i < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::string_view unit = text.substr(unit_start, i - unit_start);
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i != text.size()) {
    return Status::InvalidArgument("trailing characters in duration literal '" +
                                   std::string(text) + "'");
  }
  if (unit.empty()) {
    return Status::InvalidArgument("duration literal '" + std::string(text) +
                                   "' is missing a unit (usec/msec/sec/min/hour)");
  }

  RFIDCEP_ASSIGN_OR_RETURN(Duration factor, UnitFactor(unit));

  // Split "int.frac" to avoid floating-point rounding on exact inputs.
  size_t dot = number.find('.');
  std::string int_part = dot == std::string::npos ? number : number.substr(0, dot);
  std::string frac_part = dot == std::string::npos ? "" : number.substr(dot + 1);
  if (int_part.empty()) int_part = "0";

  constexpr int64_t kMax = kDurationInfinity;
  int64_t whole = 0;
  for (char c : int_part) {
    int digit = c - '0';
    if (whole > (kMax - digit) / 10) {
      return Status::OutOfRange("duration literal '" + std::string(text) +
                                "' overflows");
    }
    whole = whole * 10 + digit;
  }
  if (whole > kMax / factor) {
    return Status::OutOfRange("duration literal '" + std::string(text) +
                              "' overflows");
  }
  int64_t result = whole * factor;

  // Fractional part: frac/10^len of the unit factor, truncated to micros.
  int64_t frac_num = 0;
  int64_t frac_den = 1;
  for (char c : frac_part) {
    if (frac_den > kMax / 10) break;  // Beyond microsecond precision anyway.
    frac_num = frac_num * 10 + (c - '0');
    frac_den *= 10;
  }
  if (frac_den > 1) {
    result += frac_num * (factor / frac_den) +
              (frac_num * (factor % frac_den)) / frac_den;
  }
  return result;
}

}  // namespace rfidcep
