// Small string utilities shared by the lexers/parsers and the simulator.

#ifndef RFIDCEP_COMMON_STRINGS_H_
#define RFIDCEP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rfidcep {

// ASCII-lowercases a copy of `s`.
std::string AsciiLower(std::string_view s);

// ASCII-uppercases a copy of `s`.
std::string AsciiUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace rfidcep

#endif  // RFIDCEP_COMMON_STRINGS_H_
