// Small string utilities shared by the lexers/parsers and the simulator.

#ifndef RFIDCEP_COMMON_STRINGS_H_
#define RFIDCEP_COMMON_STRINGS_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rfidcep {

// Heterogeneous-lookup hash: unordered containers keyed by std::string can
// be probed with a std::string_view without constructing a temporary.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

template <typename V>
using StringViewMap =
    std::unordered_map<std::string, V, TransparentStringHash, std::equal_to<>>;

// ASCII-lowercases a copy of `s`.
std::string AsciiLower(std::string_view s);

// ASCII-uppercases a copy of `s`.
std::string AsciiUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace rfidcep

#endif  // RFIDCEP_COMMON_STRINGS_H_
