// Logical time for RFID event processing.
//
// The paper treats reader observation timestamps as the only clock; the
// engine's logical clock is the timestamp of the event currently being
// processed. We represent instants (TimePoint) and spans (Duration) as
// int64 microseconds, which covers ±292k years and makes arithmetic on
// temporal constraints exact. Duration literals in the rule language
// ("0.1sec", "10min") are parsed by ParseDuration in duration.h.

#ifndef RFIDCEP_COMMON_TIME_H_
#define RFIDCEP_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace rfidcep {

// Instant in microseconds since an arbitrary epoch (the simulator starts
// at 0). Comparable, totally ordered.
using TimePoint = int64_t;

// Span in microseconds. Negative spans are representable (dist() between
// out-of-order events) but never valid as constraints.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

// Sentinel for "no upper bound" (SEQ+ distance, unconstrained WITHIN).
inline constexpr Duration kDurationInfinity =
    std::numeric_limits<Duration>::max();

// Sentinel for "no timestamp yet" / "until changed" end time.
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<TimePoint>::max();

// Formats a TimePoint as seconds with microsecond precision, e.g. "12.300s".
std::string FormatTimePoint(TimePoint t);

// Formats a Duration compactly, e.g. "5sec", "0.1sec", "10min", "inf".
std::string FormatDuration(Duration d);

// Saturating addition: t + d clamped to kTimeInfinity. Used when computing
// expiry deadlines from possibly-infinite constraints.
inline TimePoint AddSaturating(TimePoint t, Duration d) {
  if (d >= kDurationInfinity - t) return kTimeInfinity;
  return t + d;
}

}  // namespace rfidcep

#endif  // RFIDCEP_COMMON_TIME_H_
