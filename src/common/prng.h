// Deterministic PRNG wrapper for the simulator and benchmarks.
//
// All randomness in rfidcep flows through Prng so that every simulated
// workload is reproducible from a single seed.

#ifndef RFIDCEP_COMMON_PRNG_H_
#define RFIDCEP_COMMON_PRNG_H_

#include <cstdint>
#include <random>

namespace rfidcep {

class Prng {
 public:
  explicit Prng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  // Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return UniformDouble() < p; }

  // Exponentially distributed inter-arrival gap with the given mean.
  double Exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rfidcep

#endif  // RFIDCEP_COMMON_PRNG_H_
