// Lock-free metrics primitives and a process-local registry.
//
// The detection hot path must stay allocation-free and contention-free,
// so every instrument is a fixed set of relaxed atomics: counters and
// gauges are a single word, histograms are a fixed array of bucket
// counters (bounds chosen at registration, never resized). Registration
// and export take a mutex, but they run off the hot path (compile time /
// operator request); instrument pointers handed out by the registry stay
// valid for the registry's lifetime, so instrumented code holds raw
// pointers and updating is wait-free.
//
// Instrumented components follow one convention: they hold a pointer to
// a struct of instrument pointers which is null when metrics are
// disabled, so the disabled path is a single predictable branch.
// Metrics default on at compile time (cmake -DRFIDCEP_METRICS=OFF flips
// the default); EngineOptions::enable_metrics toggles per engine at
// runtime.
//
// ExportText() emits the Prometheus text exposition format (one
// `name{labels} value` line per sample; histograms expand to
// `_bucket{le=...}` / `_sum` / `_count` series) so the output can be
// scraped or diffed directly in CI.

#ifndef RFIDCEP_COMMON_METRICS_H_
#define RFIDCEP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rfidcep::common {

// Compile-time default for EngineOptions::enable_metrics.
#ifndef RFIDCEP_METRICS_DEFAULT
#define RFIDCEP_METRICS_DEFAULT 1
#endif
inline constexpr bool kMetricsDefaultEnabled = RFIDCEP_METRICS_DEFAULT != 0;

// A monotonically increasing 64-bit counter. Increment is a relaxed
// fetch-add: totals are exact once the writers are quiescent (which
// every engine entry point guarantees by barriering before it returns).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A last-written-wins signed gauge with an atomic running maximum
// (UpdateMax) for high-watermark tracking (ring depth, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  // Raises the gauge to `v` if `v` is larger (CAS loop; wait-free in
  // practice since a single writer owns each gauge).
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// An immutable point-in-time copy of a histogram, mergeable across
// instruments (per-shard histograms sum into an engine-wide view).
struct HistogramSnapshot {
  std::vector<uint64_t> bounds;  // Inclusive upper bounds, ascending.
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last = overflow).
  uint64_t count = 0;
  uint64_t sum = 0;

  // Adds `other` in. Bounds must match (histograms from the same family).
  void Merge(const HistogramSnapshot& other);
  // Smallest bound whose cumulative count reaches quantile `q` in [0, 1];
  // overflow resolves to the largest bound. 0 when empty.
  uint64_t Quantile(double q) const;
};

// A fixed-bucket histogram: bucket i counts samples <= bounds[i] (first
// matching bucket), with one implicit overflow bucket. Record is two
// relaxed fetch-adds plus a short branchless-friendly scan of the bounds
// array — no allocation, no locks.
class Histogram {
 public:
  // `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t sample) {
    size_t i = 0;
    while (i < bounds_.size() && sample > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  HistogramSnapshot Snapshot() const;
  void Reset();

  // Power-of-two microsecond latency bounds, 1us .. ~67s. The default
  // for every *_us histogram in the engine.
  static const std::vector<uint64_t>& DefaultLatencyBoundsUs();

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Owns every instrument and resolves names to stable pointers. A name is
// the full Prometheus-style sample name including labels, e.g.
// `rule_fired_total{rule="r1"}`; the registry treats it as an opaque key
// except that ExportText() splices histogram `le` labels into an
// existing label set. Getting an already-registered name returns the
// same instrument (so per-shard components can share one); getting a
// name registered as a different kind returns nullptr.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // Empty `bounds` uses Histogram::DefaultLatencyBoundsUs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds = {});

  // Prometheus text exposition, samples sorted by name. Counters print
  // as-is; gauges likewise; each histogram expands into cumulative
  // `<name>_bucket{le="..."}` lines plus `<name>_sum` / `<name>_count`.
  std::string ExportText() const;

  // Zeroes every instrument; registration (names, bounds, handed-out
  // pointers) is preserved. Pairs with RcedaEngine::Reset().
  void Reset();

  // Every registered counter's (name, value), sorted by name. Snapshot
  // payloads carry these so restored engines keep their counter totals.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;

  size_t size() const;

 private:
  struct Entry {
    // Exactly one is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace rfidcep::common

#endif  // RFIDCEP_COMMON_METRICS_H_
