// Thread utilities for the sharded detection pipeline.
//
// Doorbell is a lost-wakeup-proof notification primitive: the waiter
// samples `generation()` *before* its final empty-check of whatever
// queue it drains, then calls WaitBeyond(seen). If the producer rang in
// between, the generation already moved and the wait returns
// immediately. WaitBeyond also times out after a short bound, so a
// missed ring can stall a caller only briefly — callers always re-check
// their real condition in a loop.

#ifndef RFIDCEP_COMMON_WORKER_H_
#define RFIDCEP_COMMON_WORKER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rfidcep::common {

class Doorbell {
 public:
  uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  void Ring() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++generation_;
    }
    cv_.notify_all();
  }

  // Blocks until the generation moves past `seen` or `timeout` elapses.
  void WaitBeyond(uint64_t seen,
                  std::chrono::microseconds timeout =
                      std::chrono::microseconds(2000)) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return generation_ != seen; });
  }

  // Untimed wait for the generation to move past `seen`; producers must
  // guarantee a Ring after every state change the waiter polls for.
  void WaitBeyondForever(uint64_t seen) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return generation_ != seen; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t generation_ = 0;
};

}  // namespace rfidcep::common

#endif  // RFIDCEP_COMMON_WORKER_H_
