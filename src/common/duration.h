// Parsing of duration literals from the paper's rule language.
//
// Grammar (case-insensitive units):
//   duration := number unit
//   number   := integer | decimal        e.g. "5", "0.1"
//   unit     := usec | msec | sec | min | hour
//
// Examples from the paper: "5sec", "0.1sec", "1sec", "10sec", "20sec",
// "30sec", "100sec", "10min".

#ifndef RFIDCEP_COMMON_DURATION_H_
#define RFIDCEP_COMMON_DURATION_H_

#include <string_view>

#include "common/status.h"
#include "common/time.h"

namespace rfidcep {

// Parses a duration literal like "0.1sec" or "10min". Whitespace between the
// number and the unit is permitted ("10 sec"). Fails on negative values,
// unknown units, or values that overflow Duration.
Result<Duration> ParseDuration(std::string_view text);

}  // namespace rfidcep

#endif  // RFIDCEP_COMMON_DURATION_H_
