// A bounded single-producer / single-consumer ring buffer.
//
// The sharded detection pipeline moves commands (coordinator -> worker)
// and match records (worker -> coordinator) through these rings: exactly
// one thread pushes and exactly one thread pops, so the ring needs no
// locks — a head index owned by the producer and a tail index owned by
// the consumer, each published with release stores and read with acquire
// loads. Capacity is fixed at construction (rounded up to a power of
// two); a full ring applies backpressure by returning false from
// TryPush, and the caller decides how to wait.

#ifndef RFIDCEP_COMMON_SPSC_RING_H_
#define RFIDCEP_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace rfidcep::common {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t min_capacity) {
    size_t capacity = 2;
    while (capacity < min_capacity) capacity <<= 1;
    buffer_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false (leaving `item` untouched) when full.
  bool TryPush(T&& item) {
    size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == buffer_.size()) return false;
    buffer_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    *out = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: drains everything currently visible into `out`
  // (appending), reading the head index once — one acquire fence per
  // drain instead of one per element. Returns the number popped.
  size_t TryPopAll(std::vector<T>* out) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    size_t popped = head - tail;
    if (popped == 0) return 0;
    out->reserve(out->size() + popped);
    for (; tail != head; ++tail) {
      out->push_back(std::move(buffer_[tail & mask_]));
    }
    tail_.store(tail, std::memory_order_release);
    return popped;
  }

  // Approximate when racing with the other side; exact when quiescent.
  size_t size() const {
    size_t head = head_.load(std::memory_order_acquire);
    size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return buffer_.size(); }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  // Producer and consumer indexes on separate cache lines so the two
  // sides do not false-share.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace rfidcep::common

#endif  // RFIDCEP_COMMON_SPSC_RING_H_
