#include "store/database.h"

#include "common/strings.h"

namespace rfidcep::store {

Status Database::CreateTable(std::string name, Schema schema) {
  std::string key = AsciiLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(std::move(key),
                  std::make_unique<Table>(std::move(name), std::move(schema)));
  return Status::Ok();
}

Status Database::DropTable(std::string_view name) {
  if (tables_.erase(AsciiLower(name)) == 0) {
    return Status::NotFound("no table '" + std::string(name) + "'");
  }
  return Status::Ok();
}

Table* Database::GetTable(std::string_view name) {
  auto it = tables_.find(AsciiLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(AsciiLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

Status Database::InstallRfidSchema() {
  if (!HasTable("OBSERVATION")) {
    RFIDCEP_RETURN_IF_ERROR(CreateTable(
        "OBSERVATION", Schema({{"reader", ColumnType::kString},
                               {"object", ColumnType::kString},
                               {"ts", ColumnType::kTime}})));
    RFIDCEP_RETURN_IF_ERROR(GetTable("OBSERVATION")->CreateIndex("object"));
  }
  if (!HasTable("OBJECTLOCATION")) {
    RFIDCEP_RETURN_IF_ERROR(CreateTable(
        "OBJECTLOCATION", Schema({{"object_epc", ColumnType::kString},
                                  {"loc_id", ColumnType::kString},
                                  {"tstart", ColumnType::kTime},
                                  {"tend", ColumnType::kTime}})));
    RFIDCEP_RETURN_IF_ERROR(
        GetTable("OBJECTLOCATION")->CreateIndex("object_epc"));
  }
  if (!HasTable("OBJECTCONTAINMENT")) {
    RFIDCEP_RETURN_IF_ERROR(CreateTable(
        "OBJECTCONTAINMENT", Schema({{"object_epc", ColumnType::kString},
                                     {"parent_epc", ColumnType::kString},
                                     {"tstart", ColumnType::kTime},
                                     {"tend", ColumnType::kTime}})));
    RFIDCEP_RETURN_IF_ERROR(
        GetTable("OBJECTCONTAINMENT")->CreateIndex("object_epc"));
  }
  return Status::Ok();
}

}  // namespace rfidcep::store
