// In-memory table with tombstoned rows and optional single-column hash
// indexes.
//
// Rows live in a slotted vector; DELETE tombstones the slot and compaction
// runs automatically once more than half the slots are dead. Hash indexes
// map an encoded column value to the slots holding it and are maintained
// incrementally on insert/update/delete.

#ifndef RFIDCEP_STORE_TABLE_H_
#define RFIDCEP_STORE_TABLE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/schema.h"

namespace rfidcep::store {

using Row = std::vector<Value>;

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // Live row count.
  size_t size() const { return live_count_; }

  // Appends a row after schema coercion. The row must have exactly
  // schema().num_columns() values.
  Status Insert(Row row);

  // Visits every live row. The visitor may not mutate the table.
  void Scan(const std::function<void(const Row&)>& visitor) const;

  // Visits live rows matching `pred`; uses the index on `column` when one
  // exists and `key` is provided.
  // Generic callers should use SelectWhere below.
  // Returns the number of visited rows.
  size_t ScanWhere(const std::function<bool(const Row&)>& pred,
                   const std::function<void(const Row&)>& visitor) const;

  // Collects live rows satisfying `pred` (nullptr = all rows).
  std::vector<Row> SelectWhere(
      const std::function<bool(const Row&)>& pred) const;

  // Indexed lookup: rows whose `column_index` value SQL-equals `key`.
  // Falls back to a scan when the column has no index.
  std::vector<Row> Lookup(size_t column_index, const Value& key) const;

  // Keyed variants visiting only rows whose indexed `column_index` value
  // equals `key` (requires HasIndex(column_index)); the residual `pred`
  // is applied on top. These are what makes per-event rule actions like
  // `UPDATE ... WHERE object_epc = o` O(1) instead of O(table).
  std::vector<Row> SelectWhereKeyed(
      size_t column_index, const Value& key,
      const std::function<bool(const Row&)>& pred) const;
  Result<size_t> UpdateWhereKeyed(size_t column_index, const Value& key,
                                  const std::function<bool(const Row&)>& pred,
                                  const std::function<void(Row*)>& mutate);
  size_t DeleteWhereKeyed(size_t column_index, const Value& key,
                          const std::function<bool(const Row&)>& pred);

  // Updates rows matching `pred` via `mutate` (which edits the row in
  // place); re-coerces and re-indexes changed rows. Returns rows updated.
  Result<size_t> UpdateWhere(const std::function<bool(const Row&)>& pred,
                             const std::function<void(Row*)>& mutate);

  // Deletes rows matching `pred`; returns rows deleted.
  size_t DeleteWhere(const std::function<bool(const Row&)>& pred);

  // Builds a hash index on `column_name`. Idempotent.
  Status CreateIndex(std::string_view column_name);
  bool HasIndex(size_t column_index) const {
    return indexes_.count(column_index) > 0;
  }

 private:
  struct Slot {
    Row row;
    bool alive = false;
  };
  using Index = std::unordered_map<std::string, std::vector<size_t>>;

  void IndexInsert(size_t slot);
  void IndexErase(size_t slot);
  void MaybeCompact();

  std::string name_;
  Schema schema_;
  std::vector<Slot> slots_;
  size_t live_count_ = 0;
  std::unordered_map<size_t, Index> indexes_;  // column index -> index
};

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_TABLE_H_
