#include "store/sql_lexer.h"

#include <cctype>

#include "common/strings.h"

namespace rfidcep::store {

bool SqlToken::Is(std::string_view word) const {
  return (kind == SqlTokenKind::kIdentifier || kind == SqlTokenKind::kSymbol) &&
         EqualsIgnoreCase(text, word);
}

Result<std::vector<SqlToken>> SqlTokenize(std::string_view sql) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  auto push = [&](SqlTokenKind kind, std::string text, size_t offset) {
    tokens.push_back(SqlToken{kind, std::move(text), offset});
  };

  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      push(SqlTokenKind::kIdentifier, std::string(sql.substr(start, i - start)),
           start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') {
          // Two dots cannot belong to one number.
          if (is_double) break;
          is_double = true;
        }
        ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (!text.empty() && text.back() == '.') {
        // Trailing dot belongs to punctuation, not the number.
        text.pop_back();
        --i;
        is_double = false;
      }
      push(is_double ? SqlTokenKind::kDouble : SqlTokenKind::kInteger,
           std::move(text), start);
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == quote) {
          if (i + 1 < sql.size() && sql[i + 1] == quote) {
            text += quote;  // Doubled quote escapes itself.
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(SqlTokenKind::kString, std::move(text), start);
      continue;
    }
    // Two-character operators first.
    if (i + 1 < sql.size()) {
      std::string_view two = sql.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        push(SqlTokenKind::kSymbol, std::string(two), start);
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case ';':
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '.':
        push(SqlTokenKind::kSymbol, std::string(1, c), start);
        ++i;
        continue;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  push(SqlTokenKind::kEnd, "", sql.size());
  return tokens;
}

}  // namespace rfidcep::store
