// Typed values for the RFID data store.
//
// The paper's temporal tables (OBJECTLOCATION, OBJECTCONTAINMENT) use the
// sentinel "UC" ("until changed") as the open end of a validity period.
// We model UC as a first-class value kind that (a) compares equal to the
// string literal "UC" so the paper's SQL (`WHERE tend = "UC"`) works
// verbatim, and (b) orders after every concrete timestamp so range
// predicates over validity periods behave like +infinity.

#ifndef RFIDCEP_STORE_VALUE_H_
#define RFIDCEP_STORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "common/time.h"

namespace rfidcep::store {

enum class ValueKind {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kTime,
  kUc,  // "Until changed" — open end of a validity period.
};

std::string_view ValueKindName(ValueKind kind);

class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Double(double v) {
    return Value(Rep(std::in_place_index<2>, v));
  }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }
  static Value Time(TimePoint t) {
    return Value(Rep(std::in_place_index<4>, t));
  }
  static Value Uc() { return Value(Rep(std::in_place_index<5>, UcTag{})); }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_uc() const { return kind() == ValueKind::kUc; }

  // Accessors require the matching kind.
  int64_t AsInt() const { return std::get<1>(rep_); }
  double AsDouble() const { return std::get<2>(rep_); }
  const std::string& AsString() const { return std::get<3>(rep_); }
  TimePoint AsTime() const { return std::get<4>(rep_); }

  // Numeric view: int/double/time as double. Requires IsNumeric().
  double NumericValue() const;
  bool IsNumeric() const {
    ValueKind k = kind();
    return k == ValueKind::kInt || k == ValueKind::kDouble ||
           k == ValueKind::kTime;
  }

  // SQL-style equality (see file comment for UC/string coercion). NULL is
  // not equal to anything, including NULL.
  bool EqualsSql(const Value& other) const;

  // Three-way comparison for ORDER BY and range predicates. Total order:
  // NULL < numerics/time < strings < UC; UC also compares against kTime as
  // +infinity. Returns -1/0/+1.
  int Compare(const Value& other) const;

  // Rendering for result sets and CSV traces.
  std::string ToString() const;

  // Key encoding for hash indexes and grouping: injective per kind.
  std::string EncodeKey() const;

  // Structural equality (used in tests). Unlike EqualsSql, NULL == NULL.
  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0 && a.kind() == b.kind();
  }

 private:
  struct UcTag {
    friend bool operator==(const UcTag&, const UcTag&) { return true; }
  };
  using Rep = std::variant<std::monostate, int64_t, double, std::string,
                           TimePoint, UcTag>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_VALUE_H_
