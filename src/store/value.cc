#include "store/value.h"

#include <cmath>

namespace rfidcep::store {

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kTime:
      return "time";
    case ValueKind::kUc:
      return "uc";
  }
  return "unknown";
}

double Value::NumericValue() const {
  switch (kind()) {
    case ValueKind::kInt:
      return static_cast<double>(AsInt());
    case ValueKind::kDouble:
      return AsDouble();
    case ValueKind::kTime:
      return static_cast<double>(AsTime());
    default:
      return std::nan("");
  }
}

bool Value::EqualsSql(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  // UC matches the literal string "UC" so the paper's SQL works verbatim.
  if (is_uc()) {
    return other.is_uc() ||
           (other.kind() == ValueKind::kString && other.AsString() == "UC");
  }
  if (other.is_uc()) return other.EqualsSql(*this);
  if (kind() == ValueKind::kString || other.kind() == ValueKind::kString) {
    return kind() == other.kind() && AsString() == other.AsString();
  }
  // Numeric cross-kind equality (int/double/time).
  if (kind() == other.kind() && kind() == ValueKind::kInt) {
    return AsInt() == other.AsInt();
  }
  if (kind() == other.kind() && kind() == ValueKind::kTime) {
    return AsTime() == other.AsTime();
  }
  return NumericValue() == other.NumericValue();
}

namespace {

// Rank in the total order: NULL < numeric/time < string < UC.
int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kInt:
    case ValueKind::kDouble:
    case ValueKind::kTime:
      return 1;
    case ValueKind::kString:
      return 2;
    case ValueKind::kUc:
      return 3;
  }
  return 4;
}

template <typename T>
int Cmp(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  // UC acts as +infinity relative to timestamps.
  if (is_uc() && other.kind() == ValueKind::kTime) return 1;
  if (kind() == ValueKind::kTime && other.is_uc()) return -1;

  int rank_a = KindRank(kind());
  int rank_b = KindRank(other.kind());
  if (rank_a != rank_b) return Cmp(rank_a, rank_b);

  switch (kind()) {
    case ValueKind::kNull:
    case ValueKind::kUc:
      return 0;
    case ValueKind::kString:
      return Cmp<std::string_view>(AsString(), other.AsString());
    case ValueKind::kInt:
      if (other.kind() == ValueKind::kInt) return Cmp(AsInt(), other.AsInt());
      break;
    case ValueKind::kTime:
      if (other.kind() == ValueKind::kTime) {
        return Cmp(AsTime(), other.AsTime());
      }
      break;
    case ValueKind::kDouble:
      break;
  }
  return Cmp(NumericValue(), other.NumericValue());
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueKind::kString:
      return AsString();
    case ValueKind::kTime:
      return FormatTimePoint(AsTime());
    case ValueKind::kUc:
      return "UC";
  }
  return "?";
}

std::string Value::EncodeKey() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "N";
    case ValueKind::kInt:
      return "I" + std::to_string(AsInt());
    case ValueKind::kDouble:
      return "D" + std::to_string(AsDouble());
    case ValueKind::kString:
      return "S" + AsString();
    case ValueKind::kTime:
      return "T" + std::to_string(AsTime());
    case ValueKind::kUc:
      return "U";
  }
  return "?";
}

}  // namespace rfidcep::store
