// Table schemas for the RFID data store.

#ifndef RFIDCEP_STORE_SCHEMA_H_
#define RFIDCEP_STORE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "store/value.h"

namespace rfidcep::store {

enum class ColumnType {
  kAny = 0,  // Dynamically typed.
  kInt,
  kDouble,
  kString,
  kTime,  // Accepts kTime and kUc (open period end).
};

std::string_view ColumnTypeName(ColumnType type);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kAny;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  // Index of `name` (case-insensitive), or -1 if absent.
  int FindColumn(std::string_view name) const;

  // Checks (and coerces where sensible) `value` for column `index`:
  // ints widen to double columns; ints/UC are accepted by time columns;
  // the string "UC" coerces to kUc in time columns. NULL is accepted
  // everywhere.
  Status CoerceValue(size_t index, Value* value) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_SCHEMA_H_
