#include "store/sql_ast.h"

namespace rfidcep::store {

std::string_view SqlBinOpName(SqlBinOp op) {
  switch (op) {
    case SqlBinOp::kEq:
      return "=";
    case SqlBinOp::kNe:
      return "!=";
    case SqlBinOp::kLt:
      return "<";
    case SqlBinOp::kLe:
      return "<=";
    case SqlBinOp::kGt:
      return ">";
    case SqlBinOp::kGe:
      return ">=";
    case SqlBinOp::kAnd:
      return "AND";
    case SqlBinOp::kOr:
      return "OR";
    case SqlBinOp::kAdd:
      return "+";
    case SqlBinOp::kSub:
      return "-";
    case SqlBinOp::kMul:
      return "*";
    case SqlBinOp::kDiv:
      return "/";
  }
  return "?";
}

SqlExprPtr SqlExpr::Literal(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

SqlExprPtr SqlExpr::Identifier(std::string name) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kIdentifier;
  e->identifier = std::move(name);
  return e;
}

SqlExprPtr SqlExpr::Binary(SqlBinOp op, SqlExprPtr l, SqlExprPtr r) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

SqlExprPtr SqlExpr::Not(SqlExprPtr inner) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(inner);
  return e;
}

SqlExprPtr SqlExpr::IsNull(SqlExprPtr inner, bool negated) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = Kind::kIsNull;
  e->lhs = std::move(inner);
  e->negated = negated;
  return e;
}

void SqlExpr::CollectIdentifiers(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kLiteral:
      return;
    case Kind::kIdentifier:
      out->push_back(identifier);
      return;
    case Kind::kBinary:
      lhs->CollectIdentifiers(out);
      rhs->CollectIdentifiers(out);
      return;
    case Kind::kNot:
    case Kind::kIsNull:
      lhs->CollectIdentifiers(out);
      return;
  }
}

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.kind() == ValueKind::kString ? "'" + literal.ToString() + "'"
                                                  : literal.ToString();
    case Kind::kIdentifier:
      return identifier;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + std::string(SqlBinOpName(op)) +
             " " + rhs->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs->ToString() + ")";
    case Kind::kIsNull:
      return "(" + lhs->ToString() + (negated ? " IS NOT NULL)" : " IS NULL)");
  }
  return "?";
}

}  // namespace rfidcep::store
