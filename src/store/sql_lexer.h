// Tokenizer for the mini-SQL dialect.

#ifndef RFIDCEP_STORE_SQL_LEXER_H_
#define RFIDCEP_STORE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rfidcep::store {

enum class SqlTokenKind {
  kIdentifier,  // Unquoted word (keywords are classified by the parser).
  kInteger,
  kDouble,
  kString,  // '...' or "..." literal, unescaped.
  kSymbol,  // ( ) , ; = != <> < <= > >= + - * / .
  kEnd,
};

struct SqlToken {
  SqlTokenKind kind;
  std::string text;  // Identifier spelling, literal text, or symbol.
  size_t offset = 0;  // Byte offset in the input, for error messages.

  // Case-insensitive keyword/identifier comparison.
  bool Is(std::string_view word) const;
};

// Tokenizes `sql`. The returned vector always ends with a kEnd token.
Result<std::vector<SqlToken>> SqlTokenize(std::string_view sql);

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_SQL_LEXER_H_
