#include "store/schema.h"

#include "common/strings.h"

namespace rfidcep::store {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kAny:
      return "ANY";
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kTime:
      return "TIME";
  }
  return "?";
}

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::CoerceValue(size_t index, Value* value) const {
  if (index >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(index) +
                              " out of range");
  }
  const Column& col = columns_[index];
  if (value->is_null() || col.type == ColumnType::kAny) return Status::Ok();

  switch (col.type) {
    case ColumnType::kInt:
      if (value->kind() == ValueKind::kInt) return Status::Ok();
      break;
    case ColumnType::kDouble:
      if (value->kind() == ValueKind::kDouble) return Status::Ok();
      if (value->kind() == ValueKind::kInt) {
        *value = Value::Double(static_cast<double>(value->AsInt()));
        return Status::Ok();
      }
      break;
    case ColumnType::kString:
      if (value->kind() == ValueKind::kString) return Status::Ok();
      if (value->is_uc()) {  // Store UC as its literal spelling.
        *value = Value::String("UC");
        return Status::Ok();
      }
      break;
    case ColumnType::kTime:
      if (value->kind() == ValueKind::kTime || value->is_uc()) {
        return Status::Ok();
      }
      if (value->kind() == ValueKind::kInt) {
        *value = Value::Time(value->AsInt());
        return Status::Ok();
      }
      if (value->kind() == ValueKind::kString && value->AsString() == "UC") {
        *value = Value::Uc();
        return Status::Ok();
      }
      break;
    case ColumnType::kAny:
      return Status::Ok();
  }
  return Status::InvalidArgument(
      "value of kind '" + std::string(ValueKindName(value->kind())) +
      "' not valid for column '" + col.name + "' of type '" +
      std::string(ColumnTypeName(col.type)) + "'");
}

}  // namespace rfidcep::store
