#include "store/csv.h"

#include <cstdlib>

#include "common/strings.h"

namespace rfidcep::store {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string QuoteField(std::string_view field) {
  if (!NeedsQuoting(field)) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string RenderValue(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kUc:
      return "UC";
    case ValueKind::kTime:
      return std::to_string(value.AsTime());  // Raw micros: exact.
    default:
      return value.ToString();
  }
}

// Splits one CSV record honoring quotes. Returns false on malformed
// quoting.
bool SplitRecord(std::string_view line, std::vector<std::string>* out) {
  out->clear();
  std::string field;
  bool quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      out->push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field += c;
    ++i;
  }
  if (quoted) return false;
  out->push_back(std::move(field));
  return true;
}

Result<Value> ParseValue(const std::string& text, ColumnType type) {
  if (text == "NULL") return Value::Null();
  if (text == "UC") return Value::Uc();
  switch (type) {
    case ColumnType::kInt: {
      char* end = nullptr;
      int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad INT value '" + text + "'");
      }
      return Value::Int(v);
    }
    case ColumnType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad DOUBLE value '" + text + "'");
      }
      return Value::Double(v);
    }
    case ColumnType::kTime: {
      char* end = nullptr;
      int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad TIME value '" + text + "'");
      }
      return Value::Time(v);
    }
    case ColumnType::kString:
    case ColumnType::kAny:
      return Value::String(text);
  }
  return Status::Internal("unknown column type");
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const auto& columns = table.schema().columns();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    out += QuoteField(columns[i].name);
  }
  out += '\n';
  table.Scan([&](const Row& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(RenderValue(row[i]));
    }
    out += '\n';
  });
  return out;
}

Status LoadTableFromCsv(std::string_view csv, Table* table) {
  const Schema& schema = table->schema();
  std::vector<std::string> fields;
  size_t line_number = 0;
  size_t start = 0;
  bool saw_header = false;
  while (start < csv.size()) {
    size_t end = csv.find('\n', start);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view line = csv.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = end + 1;
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    if (!SplitRecord(line, &fields)) {
      return Status::ParseError("csv line " + std::to_string(line_number) +
                                ": unterminated quote");
    }
    if (!saw_header) {
      if (fields.size() != schema.num_columns()) {
        return Status::InvalidArgument(
            "csv header has " + std::to_string(fields.size()) +
            " columns, table '" + table->name() + "' has " +
            std::to_string(schema.num_columns()));
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        if (!EqualsIgnoreCase(fields[i], schema.columns()[i].name)) {
          return Status::InvalidArgument(
              "csv header column '" + fields[i] + "' does not match '" +
              schema.columns()[i].name + "'");
        }
      }
      saw_header = true;
      continue;
    }
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("csv line " + std::to_string(line_number) +
                                ": expected " +
                                std::to_string(schema.num_columns()) +
                                " fields, got " +
                                std::to_string(fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      RFIDCEP_ASSIGN_OR_RETURN(
          Value value, ParseValue(fields[i], schema.columns()[i].type));
      row.push_back(std::move(value));
    }
    RFIDCEP_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  if (!saw_header) {
    return Status::InvalidArgument("csv input has no header row");
  }
  return Status::Ok();
}

}  // namespace rfidcep::store
