#include "store/sql_executor.h"

#include <algorithm>
#include <optional>

#include "store/sql_parser.h"

namespace rfidcep::store {

bool Truthy(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kInt:
      return v.AsInt() != 0;
    case ValueKind::kDouble:
      return v.AsDouble() != 0.0;
    case ValueKind::kString:
      return !v.AsString().empty();
    case ValueKind::kTime:
    case ValueKind::kUc:
      return true;
  }
  return false;
}

namespace {

// Identifier resolution context: table columns (when scanning rows) first,
// then rule parameters. `multi_index` selects the element of multi-valued
// parameters during BULK expansion; -1 forbids multi-valued parameters.
struct EvalContext {
  const Schema* schema = nullptr;
  const Row* row = nullptr;
  const ParamMap* params = nullptr;
  int multi_index = -1;
};

Result<Value> Evaluate(const SqlExpr& expr, const EvalContext& ctx);

Result<Value> ResolveIdentifier(const std::string& name,
                                const EvalContext& ctx) {
  if (ctx.schema != nullptr && ctx.row != nullptr) {
    int column = ctx.schema->FindColumn(name);
    if (column >= 0) return (*ctx.row)[static_cast<size_t>(column)];
  }
  if (ctx.params != nullptr) {
    auto it = ctx.params->find(name);
    if (it != ctx.params->end()) {
      const ParamValue& param = it->second;
      if (!param.is_multi) return param.scalar;
      if (ctx.multi_index < 0) {
        return Status::FailedPrecondition(
            "multi-valued parameter '" + name +
            "' may only be used in a BULK INSERT");
      }
      if (static_cast<size_t>(ctx.multi_index) >= param.values.size()) {
        return Status::Internal("multi-valued parameter '" + name +
                                "' index out of range");
      }
      return param.values[ctx.multi_index];
    }
  }
  return Status::NotFound("unresolved identifier '" + name +
                          "' (neither a column nor a bound parameter)");
}

Result<Value> EvaluateArithmetic(SqlBinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.IsNumeric() || !r.IsNumeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  bool use_double =
      l.kind() == ValueKind::kDouble || r.kind() == ValueKind::kDouble;
  if (use_double) {
    double a = l.NumericValue();
    double b = r.NumericValue();
    switch (op) {
      case SqlBinOp::kAdd:
        return Value::Double(a + b);
      case SqlBinOp::kSub:
        return Value::Double(a - b);
      case SqlBinOp::kMul:
        return Value::Double(a * b);
      case SqlBinOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      default:
        break;
    }
    return Status::Internal("not an arithmetic op");
  }
  int64_t a = l.kind() == ValueKind::kTime ? l.AsTime() : l.AsInt();
  int64_t b = r.kind() == ValueKind::kTime ? r.AsTime() : r.AsInt();
  bool time_a = l.kind() == ValueKind::kTime;
  bool time_b = r.kind() == ValueKind::kTime;
  switch (op) {
    case SqlBinOp::kAdd:
      return (time_a || time_b) ? Value::Time(a + b) : Value::Int(a + b);
    case SqlBinOp::kSub:
      if (time_a && time_b) return Value::Int(a - b);  // Duration.
      return (time_a || time_b) ? Value::Time(a - b) : Value::Int(a - b);
    case SqlBinOp::kMul:
      return Value::Int(a * b);
    case SqlBinOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Int(a / b);
    default:
      break;
  }
  return Status::Internal("not an arithmetic op");
}

Result<Value> Evaluate(const SqlExpr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case SqlExpr::Kind::kLiteral:
      return expr.literal;
    case SqlExpr::Kind::kIdentifier:
      return ResolveIdentifier(expr.identifier, ctx);
    case SqlExpr::Kind::kNot: {
      RFIDCEP_ASSIGN_OR_RETURN(Value inner, Evaluate(*expr.lhs, ctx));
      return Value::Int(Truthy(inner) ? 0 : 1);
    }
    case SqlExpr::Kind::kIsNull: {
      RFIDCEP_ASSIGN_OR_RETURN(Value inner, Evaluate(*expr.lhs, ctx));
      bool is_null = inner.is_null();
      return Value::Int((expr.negated ? !is_null : is_null) ? 1 : 0);
    }
    case SqlExpr::Kind::kBinary:
      break;
  }

  // Short-circuit boolean operators.
  if (expr.op == SqlBinOp::kAnd || expr.op == SqlBinOp::kOr) {
    RFIDCEP_ASSIGN_OR_RETURN(Value l, Evaluate(*expr.lhs, ctx));
    bool lt = Truthy(l);
    if (expr.op == SqlBinOp::kAnd && !lt) return Value::Int(0);
    if (expr.op == SqlBinOp::kOr && lt) return Value::Int(1);
    RFIDCEP_ASSIGN_OR_RETURN(Value r, Evaluate(*expr.rhs, ctx));
    return Value::Int(Truthy(r) ? 1 : 0);
  }

  RFIDCEP_ASSIGN_OR_RETURN(Value l, Evaluate(*expr.lhs, ctx));
  RFIDCEP_ASSIGN_OR_RETURN(Value r, Evaluate(*expr.rhs, ctx));
  switch (expr.op) {
    case SqlBinOp::kEq:
      return Value::Int(l.EqualsSql(r) ? 1 : 0);
    case SqlBinOp::kNe:
      if (l.is_null() || r.is_null()) return Value::Int(0);
      return Value::Int(l.EqualsSql(r) ? 0 : 1);
    case SqlBinOp::kLt:
    case SqlBinOp::kLe:
    case SqlBinOp::kGt:
    case SqlBinOp::kGe: {
      if (l.is_null() || r.is_null()) return Value::Int(0);
      int cmp = l.Compare(r);
      bool result = false;
      if (expr.op == SqlBinOp::kLt) result = cmp < 0;
      if (expr.op == SqlBinOp::kLe) result = cmp <= 0;
      if (expr.op == SqlBinOp::kGt) result = cmp > 0;
      if (expr.op == SqlBinOp::kGe) result = cmp >= 0;
      return Value::Int(result ? 1 : 0);
    }
    case SqlBinOp::kAdd:
    case SqlBinOp::kSub:
    case SqlBinOp::kMul:
    case SqlBinOp::kDiv:
      return EvaluateArithmetic(expr.op, l, r);
    case SqlBinOp::kAnd:
    case SqlBinOp::kOr:
      break;  // Handled above.
  }
  return Status::Internal("unhandled binary operator");
}

// Determines the BULK expansion width: the common length of all
// multi-valued parameters referenced by `exprs` (1 when none).
Result<size_t> BulkWidth(const std::vector<SqlExprPtr>& exprs,
                         const ParamMap& params) {
  size_t width = 0;
  bool found = false;
  std::vector<std::string> identifiers;
  for (const SqlExprPtr& expr : exprs) {
    expr->CollectIdentifiers(&identifiers);
  }
  for (const std::string& name : identifiers) {
    auto it = params.find(name);
    if (it == params.end() || !it->second.is_multi) continue;
    size_t len = it->second.values.size();
    if (found && len != width) {
      return Status::InvalidArgument(
          "multi-valued parameters of different lengths in BULK INSERT");
    }
    width = len;
    found = true;
  }
  return found ? width : size_t{1};
}

Result<ExecResult> ExecuteInsert(const SqlStatement& stmt, Database* db,
                                 const ParamMap& params) {
  Table* table = db->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  const Schema& schema = table->schema();

  // Map statement values to schema positions.
  std::vector<int> positions;
  if (stmt.insert_columns.empty()) {
    if (stmt.insert_values.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT into '" + stmt.table + "' needs " +
          std::to_string(schema.num_columns()) + " values, got " +
          std::to_string(stmt.insert_values.size()));
    }
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    if (stmt.insert_columns.size() != stmt.insert_values.size()) {
      return Status::InvalidArgument("INSERT column/value count mismatch");
    }
    for (const std::string& name : stmt.insert_columns) {
      int column = schema.FindColumn(name);
      if (column < 0) {
        return Status::NotFound("no column '" + name + "' in table '" +
                                stmt.table + "'");
      }
      positions.push_back(column);
    }
  }

  size_t width = 1;
  if (stmt.bulk) {
    RFIDCEP_ASSIGN_OR_RETURN(width, BulkWidth(stmt.insert_values, params));
  }

  ExecResult result;
  for (size_t k = 0; k < width; ++k) {
    EvalContext ctx;
    ctx.params = &params;
    ctx.multi_index = stmt.bulk ? static_cast<int>(k) : -1;
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < stmt.insert_values.size(); ++i) {
      RFIDCEP_ASSIGN_OR_RETURN(Value v, Evaluate(*stmt.insert_values[i], ctx));
      row[static_cast<size_t>(positions[i])] = std::move(v);
    }
    RFIDCEP_RETURN_IF_ERROR(table->Insert(std::move(row)));
    ++result.affected;
  }
  return result;
}

// Index probe: a WHERE conjunct of the form `indexed_column = value`
// whose value side evaluates without row context (literal or bound
// parameter). When found, UPDATE/DELETE/SELECT visit only the index
// bucket and apply the full WHERE as a residual check — this is what
// keeps per-event rule actions like Rule 3's
// `UPDATE OBJECTLOCATION ... WHERE object_epc = o` constant-time.
struct IndexProbe {
  size_t column;
  Value key;
};

std::optional<IndexProbe> FindIndexProbe(const SqlExpr* where,
                                         const Schema& schema,
                                         const Table& table,
                                         const ParamMap& params) {
  if (where == nullptr || where->kind != SqlExpr::Kind::kBinary) {
    return std::nullopt;
  }
  if (where->op == SqlBinOp::kAnd) {
    if (auto probe = FindIndexProbe(where->lhs.get(), schema, table, params)) {
      return probe;
    }
    return FindIndexProbe(where->rhs.get(), schema, table, params);
  }
  if (where->op != SqlBinOp::kEq) return std::nullopt;
  auto try_orientation = [&](const SqlExpr* ident_side,
                             const SqlExpr* value_side)
      -> std::optional<IndexProbe> {
    if (ident_side->kind != SqlExpr::Kind::kIdentifier) return std::nullopt;
    int column = schema.FindColumn(ident_side->identifier);
    if (column < 0 || !table.HasIndex(static_cast<size_t>(column))) {
      return std::nullopt;
    }
    EvalContext ctx;
    ctx.params = &params;  // No row: column references fail, as intended.
    Result<Value> key = Evaluate(*value_side, ctx);
    if (!key.ok() || key->is_null()) return std::nullopt;
    return IndexProbe{static_cast<size_t>(column), std::move(*key)};
  };
  if (auto probe = try_orientation(where->lhs.get(), where->rhs.get())) {
    return probe;
  }
  return try_orientation(where->rhs.get(), where->lhs.get());
}

// Wraps Evaluate as a row predicate, capturing the first error.
class RowPredicate {
 public:
  RowPredicate(const SqlExpr* where, const Schema* schema,
               const ParamMap* params)
      : where_(where), schema_(schema), params_(params) {}

  bool operator()(const Row& row) {
    if (where_ == nullptr) return true;
    EvalContext ctx;
    ctx.schema = schema_;
    ctx.row = &row;
    ctx.params = params_;
    Result<Value> v = Evaluate(*where_, ctx);
    if (!v.ok()) {
      if (error_.ok()) error_ = v.status();
      return false;
    }
    return Truthy(*v);
  }

  const Status& error() const { return error_; }

 private:
  const SqlExpr* where_;
  const Schema* schema_;
  const ParamMap* params_;
  Status error_;
};

Result<ExecResult> ExecuteUpdate(const SqlStatement& stmt, Database* db,
                                 const ParamMap& params) {
  Table* table = db->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  const Schema& schema = table->schema();

  std::vector<std::pair<size_t, const SqlExpr*>> sets;
  for (const auto& [name, expr] : stmt.set_clauses) {
    int column = schema.FindColumn(name);
    if (column < 0) {
      return Status::NotFound("no column '" + name + "' in table '" +
                              stmt.table + "'");
    }
    sets.emplace_back(static_cast<size_t>(column), expr.get());
  }

  RowPredicate pred(stmt.where.get(), &schema, &params);
  Status eval_error;
  std::optional<IndexProbe> probe =
      FindIndexProbe(stmt.where.get(), schema, *table, params);
  auto row_pred = [&pred](const Row& row) { return pred(row); };
  auto mutate = [&](Row* row) {
        // Evaluate all new values against the pre-update row, then assign,
        // so `SET a = b, b = a` behaves like simultaneous assignment.
        EvalContext ctx;
        ctx.schema = &schema;
        ctx.row = row;
        ctx.params = &params;
        std::vector<Value> new_values;
        new_values.reserve(sets.size());
        for (const auto& [column, expr] : sets) {
          Result<Value> v = Evaluate(*expr, ctx);
          if (!v.ok()) {
            if (eval_error.ok()) eval_error = v.status();
            new_values.push_back(Value::Null());
          } else {
            new_values.push_back(std::move(*v));
          }
        }
        for (size_t i = 0; i < sets.size(); ++i) {
          (*row)[sets[i].first] = std::move(new_values[i]);
        }
      };
  Result<size_t> updated =
      probe.has_value()
          ? table->UpdateWhereKeyed(probe->column, probe->key, row_pred,
                                    mutate)
          : table->UpdateWhere(row_pred, mutate);
  RFIDCEP_RETURN_IF_ERROR(pred.error());
  RFIDCEP_RETURN_IF_ERROR(eval_error);
  if (!updated.ok()) return updated.status();
  ExecResult result;
  result.affected = *updated;
  return result;
}

Result<ExecResult> ExecuteDelete(const SqlStatement& stmt, Database* db,
                                 const ParamMap& params) {
  Table* table = db->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  RowPredicate pred(stmt.where.get(), &table->schema(), &params);
  std::optional<IndexProbe> probe =
      FindIndexProbe(stmt.where.get(), table->schema(), *table, params);
  auto row_pred = [&pred](const Row& row) { return pred(row); };
  ExecResult result;
  result.affected =
      probe.has_value()
          ? table->DeleteWhereKeyed(probe->column, probe->key, row_pred)
          : table->DeleteWhere(row_pred);
  RFIDCEP_RETURN_IF_ERROR(pred.error());
  return result;
}

Result<ExecResult> ExecuteSelect(const SqlStatement& stmt, Database* db,
                                 const ParamMap& params) {
  Table* table = db->GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  const Schema& schema = table->schema();
  RowPredicate pred(stmt.where.get(), &schema, &params);
  std::optional<IndexProbe> probe =
      FindIndexProbe(stmt.where.get(), schema, *table, params);
  auto row_pred = [&pred](const Row& row) { return pred(row); };
  std::vector<Row> matched =
      probe.has_value()
          ? table->SelectWhereKeyed(probe->column, probe->key, row_pred)
          : table->SelectWhere(row_pred);
  RFIDCEP_RETURN_IF_ERROR(pred.error());

  // ORDER BY.
  if (!stmt.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;
    for (const SqlOrderBy& order : stmt.order_by) {
      int column = schema.FindColumn(order.column);
      if (column < 0) {
        return Status::NotFound("no column '" + order.column + "' in table '" +
                                stmt.table + "'");
      }
      keys.emplace_back(static_cast<size_t>(column), order.ascending);
    }
    std::stable_sort(matched.begin(), matched.end(),
                     [&keys](const Row& a, const Row& b) {
                       for (const auto& [column, ascending] : keys) {
                         int cmp = a[column].Compare(b[column]);
                         if (cmp != 0) return ascending ? cmp < 0 : cmp > 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit.has_value() &&
      matched.size() > static_cast<size_t>(*stmt.limit)) {
    matched.resize(static_cast<size_t>(*stmt.limit));
  }

  ExecResult result;
  if (stmt.select_count) {
    result.column_names.push_back("COUNT(*)");
    result.rows.push_back(
        Row{Value::Int(static_cast<int64_t>(matched.size()))});
    result.affected = 1;
    return result;
  }
  if (stmt.select_star) {
    for (const Column& column : schema.columns()) {
      result.column_names.push_back(column.name);
    }
    result.rows = std::move(matched);
  } else {
    for (const SqlExprPtr& expr : stmt.select_exprs) {
      result.column_names.push_back(expr->ToString());
    }
    for (const Row& row : matched) {
      EvalContext ctx;
      ctx.schema = &schema;
      ctx.row = &row;
      ctx.params = &params;
      Row projected;
      projected.reserve(stmt.select_exprs.size());
      for (const SqlExprPtr& expr : stmt.select_exprs) {
        RFIDCEP_ASSIGN_OR_RETURN(Value v, Evaluate(*expr, ctx));
        projected.push_back(std::move(v));
      }
      result.rows.push_back(std::move(projected));
    }
  }
  result.affected = result.rows.size();
  return result;
}

}  // namespace

Result<ExecResult> ExecuteSql(const SqlStatement& stmt, Database* db,
                              const ParamMap& params) {
  switch (stmt.kind) {
    case SqlStatement::Kind::kCreateTable: {
      RFIDCEP_RETURN_IF_ERROR(
          db->CreateTable(stmt.table, Schema(stmt.columns)));
      return ExecResult{};
    }
    case SqlStatement::Kind::kCreateIndex: {
      Table* table = db->GetTable(stmt.table);
      if (table == nullptr) {
        return Status::NotFound("no table '" + stmt.table + "'");
      }
      RFIDCEP_RETURN_IF_ERROR(table->CreateIndex(stmt.index_column));
      return ExecResult{};
    }
    case SqlStatement::Kind::kInsert:
      return ExecuteInsert(stmt, db, params);
    case SqlStatement::Kind::kUpdate:
      return ExecuteUpdate(stmt, db, params);
    case SqlStatement::Kind::kDelete:
      return ExecuteDelete(stmt, db, params);
    case SqlStatement::Kind::kSelect:
      return ExecuteSelect(stmt, db, params);
  }
  return Status::Internal("unhandled statement kind");
}

Result<ExecResult> ExecuteSql(std::string_view sql, Database* db,
                              const ParamMap& params) {
  RFIDCEP_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));
  return ExecuteSql(stmt, db, params);
}

Result<bool> EvaluateCondition(const SqlExpr& expr, const ParamMap& params) {
  EvalContext ctx;
  ctx.params = &params;
  RFIDCEP_ASSIGN_OR_RETURN(Value v, Evaluate(expr, ctx));
  return Truthy(v);
}

}  // namespace rfidcep::store
