#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/crc32.h"
#include "store/database.h"

namespace rfidcep::store {
namespace {

namespace fs = std::filesystem;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".seg";
// Frame header: u32 payload length + u32 CRC32 of the payload.
constexpr size_t kFrameHeader = 8;
// Generous per-record cap; anything larger is treated as corruption.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

std::string SegmentName(uint64_t first_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", kSegmentPrefix,
                first_lsn, kSegmentSuffix);
  return buf;
}

using common::Crc32;

// Little-endian payload encoding, mirroring the snapshot codec style.
class Enc {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Dec {
 public:
  explicit Dec(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void PutValue(Enc& enc, const Value& v) {
  enc.U8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
    case ValueKind::kUc:
      break;
    case ValueKind::kInt:
      enc.I64(v.AsInt());
      break;
    case ValueKind::kDouble:
      enc.U64(std::bit_cast<uint64_t>(v.AsDouble()));
      break;
    case ValueKind::kString:
      enc.Str(v.AsString());
      break;
    case ValueKind::kTime:
      enc.I64(v.AsTime());
      break;
  }
}

Value GetValue(Dec& dec) {
  switch (static_cast<ValueKind>(dec.U8())) {
    case ValueKind::kNull:
      return Value::Null();
    case ValueKind::kInt:
      return Value::Int(dec.I64());
    case ValueKind::kDouble:
      return Value::Double(std::bit_cast<double>(dec.U64()));
    case ValueKind::kString:
      return Value::String(dec.Str());
    case ValueKind::kTime:
      return Value::Time(dec.I64());
    case ValueKind::kUc:
      return Value::Uc();
  }
  return Value::Null();  // Dec flags the error via ok().
}

std::string EncodeRecord(const WalRecord& record) {
  Enc enc;
  enc.U8(static_cast<uint8_t>(record.kind));
  enc.U64(record.lsn);
  enc.U64(record.action_seq);
  enc.U32(record.action_index);
  enc.U32(record.affected);
  enc.Str(record.rule_id);
  enc.Str(record.sql);
  enc.U32(static_cast<uint32_t>(record.params.size()));
  for (const auto& [name, param] : record.params) {
    enc.Str(name);
    enc.U8(param.is_multi ? 1 : 0);
    if (param.is_multi) {
      enc.U32(static_cast<uint32_t>(param.values.size()));
      for (const Value& v : param.values) PutValue(enc, v);
    } else {
      PutValue(enc, param.scalar);
    }
  }
  return enc.Take();
}

bool DecodeRecord(std::string_view payload, WalRecord* out) {
  Dec dec(payload);
  uint8_t kind = dec.U8();
  if (kind > static_cast<uint8_t>(WalRecordKind::kAlarm)) return false;
  out->kind = static_cast<WalRecordKind>(kind);
  out->lsn = dec.U64();
  out->action_seq = dec.U64();
  out->action_index = dec.U32();
  out->affected = dec.U32();
  out->rule_id = dec.Str();
  out->sql = dec.Str();
  uint32_t nparams = dec.U32();
  out->params.clear();
  for (uint32_t i = 0; dec.ok() && i < nparams; ++i) {
    std::string name = dec.Str();
    if (dec.U8()) {
      uint32_t count = dec.U32();
      std::vector<Value> values;
      for (uint32_t j = 0; dec.ok() && j < count; ++j) {
        values.push_back(GetValue(dec));
      }
      out->params.emplace(std::move(name), ParamValue::Multi(std::move(values)));
    } else {
      out->params.emplace(std::move(name), ParamValue::Scalar(GetValue(dec)));
    }
  }
  return dec.AtEnd();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open wal segment " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::Ok();
}

// Walks one segment's records. Returns the byte offset of the first
// invalid record (== data.size() when the whole segment is valid).
// `expected_lsn` advances past each valid record.
size_t WalkSegment(const std::string& data, uint64_t* expected_lsn,
                   const std::function<void(const WalRecord&)>& on_record) {
  size_t offset = 0;
  while (offset < data.size()) {
    if (data.size() - offset < kFrameHeader) return offset;
    Dec header(std::string_view(data).substr(offset, kFrameHeader));
    uint32_t len = header.U32();
    uint32_t crc = header.U32();
    if (len > kMaxPayloadBytes || data.size() - offset - kFrameHeader < len) {
      return offset;
    }
    std::string_view payload(data.data() + offset + kFrameHeader, len);
    if (Crc32(payload.data(), payload.size()) != crc) return offset;
    WalRecord record;
    if (!DecodeRecord(payload, &record)) return offset;
    if (record.lsn != *expected_lsn) return offset;
    ++*expected_lsn;
    if (on_record) on_record(record);
    offset += kFrameHeader + len;
  }
  return offset;
}

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, kSegmentSuffix) == 0) {
      names.push_back(std::move(name));
    }
  }
  std::sort(names.begin(), names.end());  // Zero-padded LSN => LSN order.
  return names;
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Wal::~Wal() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  if (fd_ >= 0) {
    if (options_.fsync != FsyncPolicy::kNone) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(std::string dir, WalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create wal directory " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(std::move(dir), options));
  RFIDCEP_RETURN_IF_ERROR(wal->ScanExisting());
  return wal;
}

Status Wal::ScanExisting() {
  std::vector<std::string> names = ListSegments(dir_);
  uint64_t expected_lsn = 1;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string path = dir_ + "/" + names[i];
    std::string data;
    RFIDCEP_RETURN_IF_ERROR(ReadFile(path, &data));
    const bool final_segment = i + 1 == names.size();
    size_t valid = WalkSegment(data, &expected_lsn, [&](const WalRecord& r) {
      recovered_actions_[WalActionKey(r.rule_id, r.action_seq,
                                      r.action_index)] =
          r.affected;
    });
    if (valid < data.size()) {
      if (!final_segment) {
        return Status::InvalidArgument(
            "wal segment " + path + " is corrupt at offset " +
            std::to_string(valid) + " before the final segment");
      }
      // Torn tail: trim the final segment back to its last valid record.
      std::error_code ec;
      fs::resize_file(path, valid, ec);
      if (ec) {
        return Status::Internal("cannot truncate torn wal tail in " + path +
                                ": " + ec.message());
      }
      data.resize(valid);
    }
    if (final_segment) {
      // Reopen the last segment for appending.
      fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
      if (fd_ < 0) return Errno("cannot reopen wal segment " + path);
      segment_path_ = path;
      segment_bytes_ = data.size();
    } else {
      sealed_bytes_ += data.size();
    }
  }
  recovered_lsn_ = expected_lsn - 1;
  next_lsn_ = expected_lsn;
  if (fd_ < 0) RFIDCEP_RETURN_IF_ERROR(OpenSegment(next_lsn_));
  return Status::Ok();
}

Status Wal::OpenSegment(uint64_t first_lsn) const {
  std::string path = dir_ + "/" + SegmentName(first_lsn);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot create wal segment " + path);
  fd_ = fd;
  segment_path_ = std::move(path);
  segment_bytes_ = 0;
  return Status::Ok();
}

Status Wal::FlushLocked() const {
  if (!io_error_.ok()) return io_error_;
  size_t written = 0;
  while (written < buffer_.size()) {
    ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_error_ = Errno("write " + segment_path_);
      return io_error_;
    }
    written += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::Ok();
}

Status Wal::RotateLocked() const {
  RFIDCEP_RETURN_IF_ERROR(FlushLocked());
  if (options_.fsync != FsyncPolicy::kNone && ::fsync(fd_) != 0) {
    return Errno("fsync " + segment_path_);
  }
  ::close(fd_);
  fd_ = -1;
  sealed_bytes_ += segment_bytes_;
  return OpenSegment(next_lsn_);
}

Result<uint64_t> Wal::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!io_error_.ok()) return io_error_;
  if (segment_bytes_ >= options_.segment_bytes) {
    Status rotated = RotateLocked();
    if (!rotated.ok()) {
      io_error_ = rotated;
      return rotated;
    }
  }
  record.lsn = next_lsn_;
  std::string payload = EncodeRecord(record);
  Enc frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload.data(), payload.size()));
  std::string bytes = frame.Take();
  bytes += payload;
  buffer_ += bytes;
  segment_bytes_ += bytes.size();
  ++next_lsn_;
  // Batch boundaries come from callers via Flush()/Sync(); the size cap
  // just bounds memory if a caller never marks one.
  constexpr size_t kMaxBufferBytes = 256u << 10;
  if (options_.fsync == FsyncPolicy::kEveryAppend) {
    RFIDCEP_RETURN_IF_ERROR(SyncLocked());
  } else if (buffer_.size() >= kMaxBufferBytes) {
    RFIDCEP_RETURN_IF_ERROR(FlushLocked());
  }
  return record.lsn;
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status Wal::SyncLocked() const {
  RFIDCEP_RETURN_IF_ERROR(FlushLocked());
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    io_error_ = Errno("fsync " + segment_path_);
    return io_error_;
  }
  return Status::Ok();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::Replay(uint64_t after_lsn,
                   const std::function<Status(const WalRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  RFIDCEP_RETURN_IF_ERROR(FlushLocked());  // Replay reads the files.
  std::vector<std::string> names = ListSegments(dir_);
  uint64_t expected_lsn = 1;
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    std::string data;
    RFIDCEP_RETURN_IF_ERROR(ReadFile(path, &data));
    Status status;
    size_t valid = WalkSegment(data, &expected_lsn, [&](const WalRecord& r) {
      if (!status.ok() || r.lsn <= after_lsn) return;
      status = fn(r);
    });
    RFIDCEP_RETURN_IF_ERROR(status);
    if (valid < data.size()) {
      // Open() already trimmed torn tails, so mid-replay damage means the
      // files changed underneath us.
      return Status::Internal("wal segment " + path +
                              " became invalid at offset " +
                              std::to_string(valid) + " during replay");
    }
  }
  return Status::Ok();
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t Wal::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_bytes_ + segment_bytes_;
}

Result<uint64_t> ReplayWalIntoDatabase(const Wal& wal, Database* db,
                                       uint64_t after_lsn) {
  uint64_t last = after_lsn;
  Status replayed = wal.Replay(after_lsn, [&](const WalRecord& record) {
    if (record.kind != WalRecordKind::kSql) {
      // Procedure/alarm frames have no store effect; their keys matter
      // only for dedup, which AttachWal reads from recovered_actions().
      last = record.lsn;
      return Status::Ok();
    }
    Result<ExecResult> result = ExecuteSql(record.sql, db, record.params);
    if (!result.ok()) {
      return Status(result.status().code(),
                    "replaying wal lsn " + std::to_string(record.lsn) + " (" +
                        record.sql + "): " + result.status().message());
    }
    last = record.lsn;
    return Status::Ok();
  });
  RFIDCEP_RETURN_IF_ERROR(replayed);
  return last;
}

}  // namespace rfidcep::store
