// Write-ahead log for executed rule-action effects.
//
// The in-memory Database vanishes on crash, so checkpoint/restore of
// detector state (docs/recovery.md) is not enough to resume a stream:
// the *effects* of fired rules must be reconstructible too. The WAL
// records every successfully executed SQL action — statement text plus
// the parameter bindings it ran with — as length-prefixed, CRC-checked,
// LSN-stamped records in rotating segment files. Replaying the log into
// a fresh Database in LSN order rebuilds the exact store contents.
// Procedure and alarm invocations are logged too (kProcedure/kAlarm
// frames): they carry no store effect and are skipped by replay, but
// their dedup keys stop recovery from re-firing the callback.
//
// Each record also carries the firing's rule, its per-rule firing
// sequence number, and the action's index within the firing. Together
// they form a dedup key (WalActionKey): after a restore, the engine
// re-derives post-checkpoint firings deterministically — per-rule
// emission order is the layout-independent guarantee, which is why the
// sequence is per rule rather than engine-wide — and the dispatcher
// skips any action whose key already appears in the recovered log. This
// is what makes effects exactly-once across a crash, even when the
// recovering engine runs a different dispatch mode or shard layout
// (docs/recovery.md "Exactly-once effects").
//
// Crash tolerance: a torn write can only damage the tail of the final
// segment. Open() validates every record, truncates a torn or corrupt
// tail in the last segment, and treats corruption in any earlier
// segment as an unrecoverable error.

#ifndef RFIDCEP_STORE_WAL_H_
#define RFIDCEP_STORE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "store/sql_executor.h"

namespace rfidcep::store {

class Database;

// When appended records reach the OS and the disk.
enum class FsyncPolicy : uint8_t {
  kNone = 0,      // write() only; a crash may lose the unsynced suffix.
  kOnRotate = 1,  // fsync when a segment closes (and on explicit Sync()).
  kEveryAppend = 2,  // fsync after every record.
};

struct WalOptions {
  uint64_t segment_bytes = 4u << 20;  // Rotate when a segment reaches this.
  FsyncPolicy fsync = FsyncPolicy::kOnRotate;
};

// What kind of effect a record describes. kSql records re-execute on
// store replay; kProcedure/kAlarm records exist for dedup only (the
// callback already ran — replay never re-invokes it). kAlarm is a
// procedure whose normalized name mentions "alarm", split out so
// operators can audit alarm history separately in the log.
enum class WalRecordKind : uint8_t {
  kSql = 0,
  kProcedure = 1,
  kAlarm = 2,
};

// One executed action. `lsn` is assigned by Append (sequential from 1).
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kSql;
  uint64_t lsn = 0;
  uint64_t action_seq = 0;    // Per-rule firing sequence number.
  uint32_t action_index = 0;  // Index of the action within its firing.
  uint32_t affected = 0;      // Rows written by the original execution.
  std::string rule_id;
  std::string sql;            // Statement text, or the procedure name.
  ParamMap params;            // Bindings the action ran with.
};

// Dedup key for exactly-once dispatch: rule + per-rule firing sequence +
// action index. The sequence is per rule because only per-rule emission
// order is deterministic across shard layouts; an engine-wide number
// would stop deduplicating when the recovering engine is partitioned
// differently from the crashed one.
inline std::string WalActionKey(std::string_view rule_id, uint64_t action_seq,
                                uint32_t action_index) {
  std::string key(rule_id);
  key += '\x1f';
  key += std::to_string(action_seq);
  key += '\x1f';
  key += std::to_string(action_index);
  return key;
}

// WalActionKey -> rows affected, for crediting logical write counters
// when a deduplicated action is skipped.
using WalActionMap = std::unordered_map<std::string, uint32_t>;

class Wal {
 public:
  // Opens the log in `dir` (created if missing), scans existing
  // segments, truncates a torn tail in the final segment, and collects
  // the executed-action dedup map. Fails on corruption anywhere before
  // the final segment's tail.
  static Result<std::unique_ptr<Wal>> Open(std::string dir,
                                           WalOptions options = {});

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record, assigning and returning its LSN. Thread-safe.
  // Records are buffered in memory (unless the fsync policy is
  // kEveryAppend) so a run of appends costs one write(): callers mark
  // batch boundaries with Flush() and durability points with Sync().
  Result<uint64_t> Append(WalRecord record);

  // Writes buffered records to the OS (no fsync). Thread-safe.
  Status Flush();

  // Flushes and fsyncs everything appended so far. Thread-safe.
  Status Sync();

  // Invokes `fn` for every record with lsn > after_lsn, in LSN order.
  // Thread-safe with respect to concurrent Append.
  Status Replay(uint64_t after_lsn,
                const std::function<Status(const WalRecord&)>& fn) const;

  // Highest LSN appended (or recovered), 0 when empty. Thread-safe.
  uint64_t last_lsn() const;
  // Total bytes across all segments after the last append. Thread-safe.
  uint64_t total_bytes() const;

  // State found by the Open() scan (immutable afterwards).
  uint64_t recovered_lsn() const { return recovered_lsn_; }
  const WalActionMap& recovered_actions() const { return recovered_actions_; }

  const std::string& dir() const { return dir_; }

 private:
  Wal(std::string dir, WalOptions options);

  Status ScanExisting();          // Open-time validation + torn-tail trim.
  // Creates a fresh segment file. Const because rotation happens from
  // const flush paths; only touches mutable append state.
  Status OpenSegment(uint64_t first_lsn) const;
  Status RotateLocked() const;
  Status FlushLocked() const;
  Status SyncLocked() const;

  const std::string dir_;
  const WalOptions options_;

  uint64_t recovered_lsn_ = 0;
  WalActionMap recovered_actions_;

  // Append state is mutable so const readers (Replay, total_bytes) can
  // flush the append buffer under mu_ before looking at the files.
  mutable std::mutex mu_;
  mutable int fd_ = -1;           // Current segment, append-only.
  mutable std::string segment_path_;
  mutable std::string buffer_;    // Encoded frames not yet written.
  mutable uint64_t segment_bytes_ = 0;  // Current segment incl. buffer.
  mutable uint64_t sealed_bytes_ = 0;   // Total size of sealed segments.
  mutable uint64_t next_lsn_ = 1;
  mutable Status io_error_;       // Sticky first write failure.
};

// Replays every logged SQL statement with lsn > after_lsn into `db`,
// rebuilding store contents; kProcedure/kAlarm records advance the
// cursor without re-invoking anything. Returns the last visited LSN
// (or `after_lsn` when the log holds nothing newer, which makes a
// second replay with the returned cursor a no-op).
Result<uint64_t> ReplayWalIntoDatabase(const Wal& wal, Database* db,
                                       uint64_t after_lsn = 0);

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_WAL_H_
