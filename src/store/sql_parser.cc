#include "store/sql_parser.h"
#include <cctype>

#include <cstdlib>

#include "common/strings.h"
#include "store/sql_lexer.h"

namespace rfidcep::store {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> ParseStatement();

  Result<SqlExprPtr> ParseStandaloneExpression() {
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr expr, ParseExpr());
    RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
    return expr;
  }

 private:
  const SqlToken& Peek() const { return tokens_[pos_]; }
  const SqlToken& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == SqlTokenKind::kEnd; }

  bool Match(std::string_view word) {
    if (Peek().Is(word)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view word) {
    if (Match(word)) return Status::Ok();
    return Status::ParseError("expected '" + std::string(word) + "' but got '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().offset));
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Status::ParseError("expected " + std::string(what) +
                                " but got '" + Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Status ExpectStatementEnd() {
    Match(";");
    if (!AtEnd()) {
      return Status::ParseError("unexpected trailing token '" + Peek().text +
                                "' at offset " + std::to_string(Peek().offset));
    }
    return Status::Ok();
  }

  Result<SqlStatement> ParseCreate();
  Result<SqlStatement> ParseInsert(bool bulk);
  Result<SqlStatement> ParseUpdate();
  Result<SqlStatement> ParseDelete();
  Result<SqlStatement> ParseSelect();

  // Expression grammar (lowest to highest precedence):
  //   or    := and (OR and)*
  //   and   := not (AND not)*
  //   not   := NOT not | cmp
  //   cmp   := add ((= | != | <> | < | <= | > | >=) add)?
  //   add   := mul ((+|-) mul)*
  //   mul   := unary ((*|/) unary)*
  //   unary := '(' or ')' | literal | identifier
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }
  Result<SqlExprPtr> ParseOr();
  Result<SqlExprPtr> ParseAnd();
  Result<SqlExprPtr> ParseNot();
  Result<SqlExprPtr> ParseCmp();
  Result<SqlExprPtr> ParseAdd();
  Result<SqlExprPtr> ParseMul();
  Result<SqlExprPtr> ParseUnary();

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

Result<ColumnType> ParseColumnType(const std::string& word) {
  if (EqualsIgnoreCase(word, "INT") || EqualsIgnoreCase(word, "INTEGER") ||
      EqualsIgnoreCase(word, "BIGINT")) {
    return ColumnType::kInt;
  }
  if (EqualsIgnoreCase(word, "DOUBLE") || EqualsIgnoreCase(word, "FLOAT") ||
      EqualsIgnoreCase(word, "REAL")) {
    return ColumnType::kDouble;
  }
  if (EqualsIgnoreCase(word, "STRING") || EqualsIgnoreCase(word, "VARCHAR") ||
      EqualsIgnoreCase(word, "TEXT")) {
    return ColumnType::kString;
  }
  if (EqualsIgnoreCase(word, "TIME") || EqualsIgnoreCase(word, "TIMESTAMP")) {
    return ColumnType::kTime;
  }
  if (EqualsIgnoreCase(word, "ANY")) {
    return ColumnType::kAny;
  }
  return Status::ParseError("unknown column type '" + word + "'");
}

Result<SqlStatement> Parser::ParseStatement() {
  if (Match("CREATE")) return ParseCreate();
  if (Match("BULK")) {
    RFIDCEP_RETURN_IF_ERROR(Expect("INSERT"));
    return ParseInsert(/*bulk=*/true);
  }
  if (Match("INSERT")) return ParseInsert(/*bulk=*/false);
  if (Match("UPDATE")) return ParseUpdate();
  if (Match("DELETE")) return ParseDelete();
  if (Match("SELECT")) return ParseSelect();
  return Status::ParseError("expected a SQL statement but got '" +
                            Peek().text + "'");
}

Result<SqlStatement> Parser::ParseCreate() {
  if (Match("INDEX")) {
    SqlStatement stmt;
    stmt.kind = SqlStatement::Kind::kCreateIndex;
    RFIDCEP_RETURN_IF_ERROR(Expect("ON"));
    RFIDCEP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    RFIDCEP_RETURN_IF_ERROR(Expect("("));
    RFIDCEP_ASSIGN_OR_RETURN(stmt.index_column,
                             ExpectIdentifier("column name"));
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  RFIDCEP_RETURN_IF_ERROR(Expect("TABLE"));
  SqlStatement stmt;
  stmt.kind = SqlStatement::Kind::kCreateTable;
  RFIDCEP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  RFIDCEP_RETURN_IF_ERROR(Expect("("));
  while (true) {
    Column column;
    RFIDCEP_ASSIGN_OR_RETURN(column.name, ExpectIdentifier("column name"));
    if (Peek().kind == SqlTokenKind::kIdentifier) {
      RFIDCEP_ASSIGN_OR_RETURN(column.type, ParseColumnType(Advance().text));
    }
    stmt.columns.push_back(std::move(column));
    if (Match(")")) break;
    RFIDCEP_RETURN_IF_ERROR(Expect(","));
  }
  RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<SqlStatement> Parser::ParseInsert(bool bulk) {
  SqlStatement stmt;
  stmt.kind = SqlStatement::Kind::kInsert;
  stmt.bulk = bulk;
  RFIDCEP_RETURN_IF_ERROR(Expect("INTO"));
  RFIDCEP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (Match("(")) {
    while (true) {
      RFIDCEP_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
      stmt.insert_columns.push_back(std::move(col));
      if (Match(")")) break;
      RFIDCEP_RETURN_IF_ERROR(Expect(","));
    }
  }
  RFIDCEP_RETURN_IF_ERROR(Expect("VALUES"));
  RFIDCEP_RETURN_IF_ERROR(Expect("("));
  while (true) {
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr value, ParseExpr());
    stmt.insert_values.push_back(std::move(value));
    if (Match(")")) break;
    RFIDCEP_RETURN_IF_ERROR(Expect(","));
  }
  RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<SqlStatement> Parser::ParseUpdate() {
  SqlStatement stmt;
  stmt.kind = SqlStatement::Kind::kUpdate;
  RFIDCEP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  RFIDCEP_RETURN_IF_ERROR(Expect("SET"));
  while (true) {
    RFIDCEP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    RFIDCEP_RETURN_IF_ERROR(Expect("="));
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr value, ParseExpr());
    stmt.set_clauses.emplace_back(std::move(col), std::move(value));
    if (!Match(",")) break;
  }
  if (Match("WHERE")) {
    RFIDCEP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<SqlStatement> Parser::ParseDelete() {
  SqlStatement stmt;
  stmt.kind = SqlStatement::Kind::kDelete;
  RFIDCEP_RETURN_IF_ERROR(Expect("FROM"));
  RFIDCEP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (Match("WHERE")) {
    RFIDCEP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<SqlStatement> Parser::ParseSelect() {
  SqlStatement stmt;
  stmt.kind = SqlStatement::Kind::kSelect;
  if (Match("*")) {
    stmt.select_star = true;
  } else if (Peek().Is("COUNT") && tokens_[pos_ + 1].Is("(")) {
    Advance();  // COUNT
    Advance();  // (
    RFIDCEP_RETURN_IF_ERROR(Expect("*"));
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    stmt.select_count = true;
  } else {
    while (true) {
      RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr expr, ParseExpr());
      stmt.select_exprs.push_back(std::move(expr));
      if (!Match(",")) break;
    }
  }
  RFIDCEP_RETURN_IF_ERROR(Expect("FROM"));
  RFIDCEP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (Match("WHERE")) {
    RFIDCEP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (Match("ORDER")) {
    RFIDCEP_RETURN_IF_ERROR(Expect("BY"));
    while (true) {
      SqlOrderBy order;
      RFIDCEP_ASSIGN_OR_RETURN(order.column, ExpectIdentifier("column name"));
      if (Match("DESC")) {
        order.ascending = false;
      } else {
        Match("ASC");
      }
      stmt.order_by.push_back(std::move(order));
      if (!Match(",")) break;
    }
  }
  if (Match("LIMIT")) {
    if (Peek().kind != SqlTokenKind::kInteger) {
      return Status::ParseError("expected integer after LIMIT, got '" +
                                Peek().text + "'");
    }
    stmt.limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }
  RFIDCEP_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<SqlExprPtr> Parser::ParseOr() {
  RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAnd());
  while (Match("OR")) {
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAnd());
    lhs = SqlExpr::Binary(SqlBinOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseAnd() {
  RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseNot());
  while (Match("AND")) {
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseNot());
    lhs = SqlExpr::Binary(SqlBinOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseNot() {
  if (Match("NOT")) {
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseNot());
    return SqlExpr::Not(std::move(inner));
  }
  return ParseCmp();
}

Result<SqlExprPtr> Parser::ParseCmp() {
  RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAdd());
  if (Match("IS")) {
    bool negated = Match("NOT");
    RFIDCEP_RETURN_IF_ERROR(Expect("NULL"));
    return SqlExpr::IsNull(std::move(lhs), negated);
  }
  SqlBinOp op;
  if (Match("=")) {
    op = SqlBinOp::kEq;
  } else if (Match("!=") || Match("<>")) {
    op = SqlBinOp::kNe;
  } else if (Match("<=")) {
    op = SqlBinOp::kLe;
  } else if (Match(">=")) {
    op = SqlBinOp::kGe;
  } else if (Match("<")) {
    op = SqlBinOp::kLt;
  } else if (Match(">")) {
    op = SqlBinOp::kGt;
  } else {
    return lhs;
  }
  RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAdd());
  return SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
}

Result<SqlExprPtr> Parser::ParseAdd() {
  RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseMul());
  while (true) {
    SqlBinOp op;
    if (Match("+")) {
      op = SqlBinOp::kAdd;
    } else if (Match("-")) {
      op = SqlBinOp::kSub;
    } else {
      return lhs;
    }
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseMul());
    lhs = SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<SqlExprPtr> Parser::ParseMul() {
  RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseUnary());
  while (true) {
    SqlBinOp op;
    if (Match("*")) {
      op = SqlBinOp::kMul;
    } else if (Match("/")) {
      op = SqlBinOp::kDiv;
    } else {
      return lhs;
    }
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseUnary());
    lhs = SqlExpr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<SqlExprPtr> Parser::ParseUnary() {
  if (Match("(")) {
    RFIDCEP_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
    RFIDCEP_RETURN_IF_ERROR(Expect(")"));
    return inner;
  }
  const SqlToken& token = Peek();
  switch (token.kind) {
    case SqlTokenKind::kInteger: {
      int64_t v = std::strtoll(token.text.c_str(), nullptr, 10);
      Advance();
      return SqlExpr::Literal(Value::Int(v));
    }
    case SqlTokenKind::kDouble: {
      double v = std::strtod(token.text.c_str(), nullptr);
      Advance();
      return SqlExpr::Literal(Value::Double(v));
    }
    case SqlTokenKind::kString: {
      std::string text = token.text;
      Advance();
      return SqlExpr::Literal(Value::String(std::move(text)));
    }
    case SqlTokenKind::kIdentifier: {
      if (token.Is("NULL")) {
        Advance();
        return SqlExpr::Literal(Value::Null());
      }
      if (token.Is("UC")) {
        Advance();
        return SqlExpr::Literal(Value::Uc());
      }
      if (token.Is("TRUE")) {
        Advance();
        return SqlExpr::Literal(Value::Int(1));
      }
      if (token.Is("FALSE")) {
        Advance();
        return SqlExpr::Literal(Value::Int(0));
      }
      std::string name = token.text;
      Advance();
      return SqlExpr::Identifier(std::move(name));
    }
    default:
      return Status::ParseError("unexpected token '" + token.text +
                                "' at offset " + std::to_string(token.offset));
  }
}

}  // namespace

Result<SqlStatement> ParseSql(std::string_view sql) {
  RFIDCEP_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, SqlTokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SqlExprPtr> ParseSqlExpression(std::string_view text) {
  RFIDCEP_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, SqlTokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

bool LooksLikeSql(std::string_view sql) {
  std::string_view trimmed = StripWhitespace(sql);
  size_t end = 0;
  while (end < trimmed.size() &&
         std::isalpha(static_cast<unsigned char>(trimmed[end]))) {
    ++end;
  }
  std::string_view word = trimmed.substr(0, end);
  for (std::string_view kw :
       {"CREATE", "INSERT", "BULK", "UPDATE", "DELETE", "SELECT"}) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

}  // namespace rfidcep::store
