#include "store/table.h"

namespace rfidcep::store {

Status Table::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "table '" + name_ + "' expects " +
        std::to_string(schema_.num_columns()) + " values, got " +
        std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    RFIDCEP_RETURN_IF_ERROR(schema_.CoerceValue(i, &row[i]));
  }
  slots_.push_back(Slot{std::move(row), /*alive=*/true});
  ++live_count_;
  IndexInsert(slots_.size() - 1);
  return Status::Ok();
}

void Table::Scan(const std::function<void(const Row&)>& visitor) const {
  for (const Slot& slot : slots_) {
    if (slot.alive) visitor(slot.row);
  }
}

size_t Table::ScanWhere(const std::function<bool(const Row&)>& pred,
                        const std::function<void(const Row&)>& visitor) const {
  size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.alive && pred(slot.row)) {
      visitor(slot.row);
      ++n;
    }
  }
  return n;
}

std::vector<Row> Table::SelectWhere(
    const std::function<bool(const Row&)>& pred) const {
  std::vector<Row> out;
  for (const Slot& slot : slots_) {
    if (slot.alive && (!pred || pred(slot.row))) out.push_back(slot.row);
  }
  return out;
}

std::vector<Row> Table::Lookup(size_t column_index, const Value& key) const {
  std::vector<Row> out;
  auto it = indexes_.find(column_index);
  if (it != indexes_.end()) {
    auto bucket = it->second.find(key.EncodeKey());
    if (bucket != it->second.end()) {
      for (size_t slot : bucket->second) {
        if (slot < slots_.size() && slots_[slot].alive &&
            slots_[slot].row[column_index].EqualsSql(key)) {
          out.push_back(slots_[slot].row);
        }
      }
    }
    return out;
  }
  for (const Slot& slot : slots_) {
    if (slot.alive && slot.row[column_index].EqualsSql(key)) {
      out.push_back(slot.row);
    }
  }
  return out;
}

std::vector<Row> Table::SelectWhereKeyed(
    size_t column_index, const Value& key,
    const std::function<bool(const Row&)>& pred) const {
  std::vector<Row> out;
  auto index_it = indexes_.find(column_index);
  if (index_it == indexes_.end()) return SelectWhere(pred);
  auto bucket = index_it->second.find(key.EncodeKey());
  if (bucket == index_it->second.end()) return out;
  for (size_t slot : bucket->second) {
    const Slot& s = slots_[slot];
    if (s.alive && s.row[column_index].EqualsSql(key) &&
        (!pred || pred(s.row))) {
      out.push_back(s.row);
    }
  }
  return out;
}

Result<size_t> Table::UpdateWhereKeyed(
    size_t column_index, const Value& key,
    const std::function<bool(const Row&)>& pred,
    const std::function<void(Row*)>& mutate) {
  auto index_it = indexes_.find(column_index);
  if (index_it == indexes_.end()) return UpdateWhere(pred, mutate);
  auto bucket = index_it->second.find(key.EncodeKey());
  if (bucket == index_it->second.end()) return size_t{0};
  // Mutation re-indexes rows, invalidating the bucket: snapshot first.
  std::vector<size_t> slots(bucket->second.begin(), bucket->second.end());
  size_t updated = 0;
  for (size_t i : slots) {
    Slot& slot = slots_[i];
    if (!slot.alive || !slot.row[column_index].EqualsSql(key)) continue;
    if (pred && !pred(slot.row)) continue;
    IndexErase(i);
    mutate(&slot.row);
    if (slot.row.size() != schema_.num_columns()) {
      return Status::Internal("update changed arity of table '" + name_ +
                              "'");
    }
    for (size_t c = 0; c < slot.row.size(); ++c) {
      RFIDCEP_RETURN_IF_ERROR(schema_.CoerceValue(c, &slot.row[c]));
    }
    IndexInsert(i);
    ++updated;
  }
  return updated;
}

size_t Table::DeleteWhereKeyed(size_t column_index, const Value& key,
                               const std::function<bool(const Row&)>& pred) {
  auto index_it = indexes_.find(column_index);
  if (index_it == indexes_.end()) return DeleteWhere(pred);
  auto bucket = index_it->second.find(key.EncodeKey());
  if (bucket == index_it->second.end()) return 0;
  std::vector<size_t> slots(bucket->second.begin(), bucket->second.end());
  size_t deleted = 0;
  for (size_t i : slots) {
    Slot& slot = slots_[i];
    if (!slot.alive || !slot.row[column_index].EqualsSql(key)) continue;
    if (pred && !pred(slot.row)) continue;
    IndexErase(i);
    slot.alive = false;
    slot.row.clear();
    --live_count_;
    ++deleted;
  }
  if (deleted > 0) MaybeCompact();
  return deleted;
}

Result<size_t> Table::UpdateWhere(const std::function<bool(const Row&)>& pred,
                                  const std::function<void(Row*)>& mutate) {
  size_t updated = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.alive || !pred(slot.row)) continue;
    IndexErase(i);
    mutate(&slot.row);
    if (slot.row.size() != schema_.num_columns()) {
      return Status::Internal("update changed arity of table '" + name_ + "'");
    }
    for (size_t c = 0; c < slot.row.size(); ++c) {
      RFIDCEP_RETURN_IF_ERROR(schema_.CoerceValue(c, &slot.row[c]));
    }
    IndexInsert(i);
    ++updated;
  }
  return updated;
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& pred) {
  size_t deleted = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.alive && pred(slot.row)) {
      IndexErase(i);
      slot.alive = false;
      slot.row.clear();
      --live_count_;
      ++deleted;
    }
  }
  if (deleted > 0) MaybeCompact();
  return deleted;
}

Status Table::CreateIndex(std::string_view column_name) {
  int column = schema_.FindColumn(column_name);
  if (column < 0) {
    return Status::NotFound("no column '" + std::string(column_name) +
                            "' in table '" + name_ + "'");
  }
  size_t column_index = static_cast<size_t>(column);
  if (indexes_.count(column_index) > 0) return Status::Ok();
  Index& index = indexes_[column_index];
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) {
      index[slots_[i].row[column_index].EncodeKey()].push_back(i);
    }
  }
  return Status::Ok();
}

void Table::IndexInsert(size_t slot) {
  for (auto& [column, index] : indexes_) {
    index[slots_[slot].row[column].EncodeKey()].push_back(slot);
  }
}

void Table::IndexErase(size_t slot) {
  for (auto& [column, index] : indexes_) {
    auto it = index.find(slots_[slot].row[column].EncodeKey());
    if (it == index.end()) continue;
    std::erase(it->second, slot);
    if (it->second.empty()) index.erase(it);
  }
}

void Table::MaybeCompact() {
  if (slots_.size() < 64 || live_count_ * 2 > slots_.size()) return;
  std::vector<Slot> compacted;
  compacted.reserve(live_count_);
  for (Slot& slot : slots_) {
    if (slot.alive) compacted.push_back(std::move(slot));
  }
  slots_ = std::move(compacted);
  for (auto& [column, index] : indexes_) {
    index.clear();
    for (size_t i = 0; i < slots_.size(); ++i) {
      index[slots_[i].row[column].EncodeKey()].push_back(i);
    }
  }
}

}  // namespace rfidcep::store
