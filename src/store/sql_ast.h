// AST for the mini-SQL dialect used by RFID rule actions (paper §3).
//
// Supported statements:
//   CREATE TABLE t (col TYPE, ...)
//   CREATE INDEX ON t (col)
//   [BULK] INSERT INTO t [(cols)] VALUES (expr, ...)
//   UPDATE t SET col = expr, ... [WHERE cond]
//   DELETE FROM t [WHERE cond]
//   SELECT * | expr, ... FROM t [WHERE cond] [ORDER BY col [ASC|DESC], ...]
//     [LIMIT n]
//
// Identifiers in expressions resolve to the current table's columns first
// and otherwise to rule-match parameters ("o", "t2", ...) bound at
// execution time — that is how the paper's actions reference event
// attributes, e.g. `UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o`.

#ifndef RFIDCEP_STORE_SQL_AST_H_
#define RFIDCEP_STORE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/schema.h"
#include "store/value.h"

namespace rfidcep::store {

enum class SqlBinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

std::string_view SqlBinOpName(SqlBinOp op);

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

struct SqlExpr {
  enum class Kind { kLiteral, kIdentifier, kBinary, kNot, kIsNull };

  Kind kind;
  // kLiteral:
  Value literal;
  // kIdentifier:
  std::string identifier;
  // kBinary / kNot / kIsNull:
  SqlBinOp op = SqlBinOp::kEq;
  SqlExprPtr lhs;
  SqlExprPtr rhs;       // Unused for kNot/kIsNull.
  bool negated = false;  // kIsNull: IS NOT NULL.

  static SqlExprPtr Literal(Value v);
  static SqlExprPtr Identifier(std::string name);
  static SqlExprPtr Binary(SqlBinOp op, SqlExprPtr l, SqlExprPtr r);
  static SqlExprPtr Not(SqlExprPtr inner);
  static SqlExprPtr IsNull(SqlExprPtr inner, bool negated);

  // Collects identifier names referenced by this expression into `out`.
  void CollectIdentifiers(std::vector<std::string>* out) const;

  std::string ToString() const;
};

struct SqlOrderBy {
  std::string column;
  bool ascending = true;
};

struct SqlStatement {
  enum class Kind {
    kCreateTable,
    kCreateIndex,
    kInsert,
    kUpdate,
    kDelete,
    kSelect,
  };

  Kind kind;
  std::string table;

  // kCreateTable:
  std::vector<Column> columns;
  // kCreateIndex:
  std::string index_column;
  // kInsert:
  bool bulk = false;                          // BULK INSERT (paper Rule 4).
  std::vector<std::string> insert_columns;    // Empty = positional.
  std::vector<SqlExprPtr> insert_values;
  // kUpdate:
  std::vector<std::pair<std::string, SqlExprPtr>> set_clauses;
  // kSelect:
  bool select_star = false;
  bool select_count = false;  // SELECT COUNT(*) — the only aggregate.
  std::vector<SqlExprPtr> select_exprs;
  std::vector<SqlOrderBy> order_by;
  std::optional<int64_t> limit;
  // kUpdate/kDelete/kSelect:
  SqlExprPtr where;  // Null = no predicate.
};

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_SQL_AST_H_
