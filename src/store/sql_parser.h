// Recursive-descent parser for the mini-SQL dialect (grammar in sql_ast.h).

#ifndef RFIDCEP_STORE_SQL_PARSER_H_
#define RFIDCEP_STORE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "store/sql_ast.h"

namespace rfidcep::store {

// Parses a single SQL statement (an optional trailing ';' is allowed).
Result<SqlStatement> ParseSql(std::string_view sql);

// Parses a standalone scalar/boolean expression (used for rule IF
// conditions). The whole input must be consumed.
Result<SqlExprPtr> ParseSqlExpression(std::string_view text);

// True if `sql` begins with one of the dialect's statement keywords
// (CREATE / INSERT / BULK / UPDATE / DELETE / SELECT) — used by the rule
// parser to distinguish SQL actions from procedure-call actions.
bool LooksLikeSql(std::string_view sql);

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_SQL_PARSER_H_
