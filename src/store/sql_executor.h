// Executor for the mini-SQL dialect against a Database.
//
// Rule actions carry parameters bound from the matched event instance
// ("o", "r", "t2", ...). Scalar parameters substitute directly; a
// multi-valued parameter (from an aperiodic-sequence match) may only be
// used inside a BULK INSERT, which expands to one row per element — the
// paper's Rule 4 `BULK INSERT INTO CONTAINMENT VALUES (o2, o1, t2, "UC")`.

#ifndef RFIDCEP_STORE_SQL_EXECUTOR_H_
#define RFIDCEP_STORE_SQL_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/database.h"
#include "store/sql_ast.h"

namespace rfidcep::store {

struct ParamValue {
  bool is_multi = false;
  Value scalar;                // Valid when !is_multi.
  std::vector<Value> values;   // Valid when is_multi.

  static ParamValue Scalar(Value v) {
    ParamValue p;
    p.scalar = std::move(v);
    return p;
  }
  static ParamValue Multi(std::vector<Value> vs) {
    ParamValue p;
    p.is_multi = true;
    p.values = std::move(vs);
    return p;
  }
};

using ParamMap = std::map<std::string, ParamValue>;

struct ExecResult {
  size_t affected = 0;                    // Rows inserted/updated/deleted.
  std::vector<std::string> column_names;  // SELECT only.
  std::vector<Row> rows;                  // SELECT only.
};

// Executes a parsed statement. `params` supplies rule-match bindings.
Result<ExecResult> ExecuteSql(const SqlStatement& stmt, Database* db,
                              const ParamMap& params = {});

// Convenience: parse + execute.
Result<ExecResult> ExecuteSql(std::string_view sql, Database* db,
                              const ParamMap& params = {});

// Evaluates a standalone boolean expression (a rule IF-condition) against
// `params` only (no row context). NULL results are false.
Result<bool> EvaluateCondition(const SqlExpr& expr, const ParamMap& params);

// True in the SQL sense: non-null, non-zero number, non-empty string.
bool Truthy(const Value& v);

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_SQL_EXECUTOR_H_
