// The RFID data store: a named collection of tables (paper Fig. 2).

#ifndef RFIDCEP_STORE_DATABASE_H_
#define RFIDCEP_STORE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/table.h"

namespace rfidcep::store {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates a table; fails with kAlreadyExists on a duplicate name
  // (case-insensitive).
  Status CreateTable(std::string name, Schema schema);

  // Drops a table; fails with kNotFound if absent.
  Status DropTable(std::string_view name);

  // Case-insensitive lookup; nullptr if absent.
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  bool HasTable(std::string_view name) const {
    return GetTable(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;

  // Creates the three relations the paper's rules target, with hash
  // indexes on the object EPC columns:
  //   OBSERVATION(reader STRING, object STRING, ts TIME)
  //   OBJECTLOCATION(object_epc STRING, loc_id STRING, tstart TIME, tend TIME)
  //   OBJECTCONTAINMENT(object_epc STRING, parent_epc STRING,
  //                     tstart TIME, tend TIME)
  // Idempotent: existing tables are left untouched.
  Status InstallRfidSchema();

 private:
  // Keyed by lowercase name.
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_DATABASE_H_
