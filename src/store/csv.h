// CSV export/import for data-store tables: audit dumps of the semantic
// data rules produce (location histories, containment relations) and
// fixture loading for tests.
//
// Format: a header row with column names, then one row per line. Values
// are rendered with Value::ToString, except TIME columns which use raw
// microsecond integers so round-trips are exact; "UC" and "NULL" are the
// sentinels. Fields containing commas/quotes/newlines are double-quoted
// with "" escaping.

#ifndef RFIDCEP_STORE_CSV_H_
#define RFIDCEP_STORE_CSV_H_

#include <string>

#include "common/status.h"
#include "store/table.h"

namespace rfidcep::store {

// Serializes the live rows of `table` to CSV text (schema order).
std::string TableToCsv(const Table& table);

// Appends rows parsed from `csv` into `table`. The header must name the
// table's columns in schema order (case-insensitive). Values are parsed
// per the column type; kAny columns parse as strings.
Status LoadTableFromCsv(std::string_view csv, Table* table);

}  // namespace rfidcep::store

#endif  // RFIDCEP_STORE_CSV_H_
