// The complete §5 scenario: an RFID-enabled supply chain with warehouses,
// shipping, retail stores, and sale to customers.
//
// A SupplyChain owns the tag pools (SGTIN-96 EPCs minted through the epc
// substrate), the reader registry (packing conveyors, docks, smart
// shelves, exit doors per site), the product catalog behind type(), the
// paper's five rules instantiated for site 0, a scalable generated rule
// program (for the Fig. 9 rules sweep), and the merged observation stream
// at a configurable arrival rate.

#ifndef RFIDCEP_SIM_SUPPLY_CHAIN_H_
#define RFIDCEP_SIM_SUPPLY_CHAIN_H_

#include <string>
#include <vector>

#include "common/prng.h"
#include "epc/catalog.h"
#include "events/event_type.h"
#include "sim/workload.h"

namespace rfidcep::sim {

struct SupplyChainConfig {
  uint64_t seed = 42;
  int num_sites = 1;
  // Tag pool sizes (per chain, shared across sites).
  int num_items = 500;
  int num_cases = 100;
  int num_laptops = 12;
  int num_badges = 6;
  // When > 0, the item pool is minted across this many SGTIN item
  // classes (types "sku_0".."sku_<n-1>") instead of one "item" class, so
  // rule sets can select disjoint SKU slices by type(o) predicate (the
  // Fig. 9 10k-rule sweep).
  int num_skus = 0;
  // Stream shaping.
  double arrival_rate_per_second = 1000.0;  // Paper: 1000 events/sec.
  double duplicate_rate = 0.03;
  // Fraction of (non-duplicate) events spent on each activity; the rest is
  // background tracking traffic.
  double packing_fraction = 0.15;
  double shelf_fraction = 0.10;
  double exit_fraction = 0.05;
  double pos_fraction = 0.05;
  int items_per_case = 4;
};

class SupplyChain {
 public:
  explicit SupplyChain(SupplyChainConfig config);

  const SupplyChainConfig& config() const { return config_; }
  const epc::ProductCatalog& catalog() const { return catalog_; }
  const epc::ReaderRegistry& readers() const { return readers_; }
  events::Environment environment() const {
    return events::Environment{&catalog_, &readers_};
  }

  // Tag pools (pure-identity SGTIN URIs).
  const std::vector<std::string>& items() const { return items_; }
  const std::vector<std::string>& cases() const { return cases_; }
  const std::vector<std::string>& laptops() const { return laptops_; }
  const std::vector<std::string>& badges() const { return badges_; }

  // Reader ids for site `s`.
  std::string PackItemReader(int site) const;
  std::string PackCaseReader(int site) const;
  std::string ShelfReader(int site) const;
  std::string ExitReader(int site) const;
  std::string DockReader(int site) const;
  std::string PosReader(int site) const;

  // The paper's Rules 1–5 instantiated for site 0 (parsable rule program).
  std::string PaperRuleProgram() const;

  // The "sale to customers" stage (§5): a point-of-sale observation closes
  // the item's location history into the customer's hands and dissolves
  // its containment relationship.
  std::string SaleRuleProgram() const;

  // `num_rules` rules cycling the five paper families across sites, with
  // varied windows so they exercise distinct graph nodes (Fig. 9 rules
  // sweep).
  std::string GeneratedRuleProgram(int num_rules) const;

  // `num_rules` duplicate-detection rules over the (site, SKU) cross
  // product: each watches one site's shelf group for one SKU type, so a
  // single observation concerns at most ~num_rules / (sites * skus)
  // rules no matter how large the rule set grows. Requires num_skus > 0
  // — this is the paper-family workload the rule-set compiler's indexed
  // dispatch is measured on.
  std::string SkuSiteRuleProgram(int num_rules) const;

  // Builds a merged, time-ordered stream of ~`total_events` observations
  // at the configured arrival rate, spread across all sites. Deterministic
  // in the seed.
  std::vector<Observation> GenerateStream(size_t total_events);

  // Ground truth from the last GenerateStream call.
  const std::vector<PackingEpisode>& last_packing_episodes() const {
    return last_packing_episodes_;
  }
  int last_unauthorized_exits() const { return last_unauthorized_exits_; }

 private:
  SupplyChainConfig config_;
  Prng prng_;
  epc::ProductCatalog catalog_;
  epc::ReaderRegistry readers_;
  std::vector<std::string> items_;
  std::vector<std::string> cases_;
  std::vector<std::string> laptops_;
  std::vector<std::string> badges_;
  std::vector<PackingEpisode> last_packing_episodes_;
  int last_unauthorized_exits_ = 0;
};

}  // namespace rfidcep::sim

#endif  // RFIDCEP_SIM_SUPPLY_CHAIN_H_
