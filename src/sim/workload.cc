#include "sim/workload.h"

#include <algorithm>

namespace rfidcep::sim {

std::vector<Observation> MergeStreams(
    std::vector<std::vector<Observation>> streams) {
  std::vector<Observation> merged;
  size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  merged.reserve(total);
  for (auto& stream : streams) {
    merged.insert(merged.end(), std::make_move_iterator(stream.begin()),
                  std::make_move_iterator(stream.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

PackingWorkload GeneratePacking(const PackingConfig& config,
                                const std::vector<std::string>& item_epcs,
                                const std::vector<std::string>& case_epcs,
                                Prng* prng) {
  PackingWorkload out;
  size_t item_cursor = 0;
  size_t case_cursor = 0;
  for (int episode = 0; episode < config.episodes; ++episode) {
    TimePoint t = config.start + episode * config.episode_period;
    PackingEpisode ground_truth;
    for (int i = 0; i < config.items_per_case; ++i) {
      if (i > 0) {
        t += prng->UniformInt(config.item_gap_lo, config.item_gap_hi);
      }
      const std::string& item = item_epcs[item_cursor++ % item_epcs.size()];
      out.observations.push_back(Observation{config.item_reader, item, t});
      ground_truth.item_epcs.push_back(item);
    }
    t += prng->UniformInt(config.case_gap_lo, config.case_gap_hi);
    const std::string& case_epc = case_epcs[case_cursor++ % case_epcs.size()];
    out.observations.push_back(Observation{config.case_reader, case_epc, t});
    ground_truth.case_epc = case_epc;
    out.episodes.push_back(std::move(ground_truth));
  }
  return out;
}

std::vector<Observation> GenerateShelf(const ShelfConfig& config,
                                       const std::vector<ShelfStay>& stays,
                                       Prng* prng) {
  std::vector<Observation> out;
  for (int scan = 0; scan < config.scans; ++scan) {
    TimePoint scan_time = config.start + scan * config.scan_period;
    for (const ShelfStay& stay : stays) {
      if (scan_time >= stay.enters && scan_time < stay.leaves) {
        TimePoint read_time =
            scan_time + prng->UniformInt(0, config.read_jitter);
        out.push_back(Observation{config.reader, stay.object_epc, read_time});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

ExitWorkload GenerateExit(const ExitConfig& config,
                          const std::vector<std::string>& asset_epcs,
                          const std::vector<std::string>& badge_epcs,
                          Prng* prng) {
  ExitWorkload out;
  TimePoint t = config.start;
  for (int pass = 0; pass < config.passes; ++pass) {
    t += static_cast<Duration>(prng->Exponential(
        static_cast<double>(config.mean_gap)));
    const std::string& asset = asset_epcs[pass % asset_epcs.size()];
    out.observations.push_back(Observation{config.reader, asset, t});
    if (prng->Chance(config.authorized_fraction)) {
      Duration offset = prng->UniformInt(-config.escort_window,
                                         config.escort_window);
      const std::string& badge =
          badge_epcs[static_cast<size_t>(prng->UniformInt(
              0, static_cast<int64_t>(badge_epcs.size()) - 1))];
      out.observations.push_back(
          Observation{config.reader, badge, std::max<TimePoint>(0, t + offset)});
      ++out.authorized;
    } else {
      ++out.unauthorized;
    }
  }
  std::stable_sort(out.observations.begin(), out.observations.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::vector<Observation> GenerateRoute(
    const RouteConfig& config, const std::vector<std::string>& object_epcs,
    Prng* prng) {
  std::vector<Observation> out;
  TimePoint departure = config.start;
  for (const std::string& object : object_epcs) {
    TimePoint t = departure;
    for (const std::string& reader : config.route_readers) {
      out.push_back(Observation{reader, object, t});
      t += prng->UniformInt(config.hop_gap_lo, config.hop_gap_hi);
    }
    departure += config.object_stagger;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::vector<Observation> InjectDuplicates(std::vector<Observation> stream,
                                          double duplicate_rate,
                                          Duration delay_lo, Duration delay_hi,
                                          Prng* prng) {
  size_t original = stream.size();
  for (size_t i = 0; i < original; ++i) {
    if (prng->Chance(duplicate_rate)) {
      Observation dup = stream[i];
      dup.timestamp += prng->UniformInt(delay_lo, delay_hi);
      stream.push_back(std::move(dup));
    }
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.timestamp < b.timestamp;
                   });
  return stream;
}

std::vector<Observation> GenerateBackground(
    const std::vector<std::string>& readers,
    const std::vector<std::string>& objects, TimePoint start,
    double rate_per_second, size_t count, Prng* prng) {
  std::vector<Observation> out;
  out.reserve(count);
  double mean_gap_us = 1e6 / rate_per_second;
  TimePoint t = start;
  for (size_t i = 0; i < count; ++i) {
    t += std::max<Duration>(1,
                            static_cast<Duration>(prng->Exponential(mean_gap_us)));
    const std::string& reader =
        readers[static_cast<size_t>(prng->UniformInt(
            0, static_cast<int64_t>(readers.size()) - 1))];
    const std::string& object =
        objects[static_cast<size_t>(prng->UniformInt(
            0, static_cast<int64_t>(objects.size()) - 1))];
    out.push_back(Observation{reader, object, t});
  }
  return out;
}

BaggageWorkload GenerateBaggage(const BaggageConfig& config,
                                const std::vector<std::string>& bag_epcs,
                                Prng* prng) {
  BaggageWorkload out;
  const size_t stages = config.stage_readers.size();
  // Each reader uploads its buffered reads every flush_period, phase-
  // shifted so batches from different portals interleave rather than
  // synchronize; the phase is drawn once per reader.
  std::vector<Duration> phase(stages);
  for (size_t r = 0; r < stages; ++r) {
    phase[r] = prng->UniformInt(0, config.flush_period - 1);
  }
  struct Buffered {
    TimePoint upload;  // End of the flush window that carries the read.
    size_t reader;
    size_t order;  // Read order within the reader's buffer.
    Observation obs;
  };
  std::vector<Buffered> buffered;
  size_t reads = 0;
  auto record = [&](size_t reader, const std::string& bag, TimePoint t) {
    TimePoint upload =
        ((t - phase[reader]) / config.flush_period + 1) * config.flush_period +
        phase[reader];
    buffered.push_back(Buffered{
        upload, reader, reads++,
        Observation{config.stage_readers[reader], bag, t}});
  };
  for (size_t i = 0; i < bag_epcs.size(); ++i) {
    TimePoint t =
        config.start + static_cast<TimePoint>(i) * config.bag_stagger;
    std::vector<size_t> route;
    for (size_t s = 0; s < stages; ++s) {
      route.push_back(s);
      // A misrouted bag loops back through the sorter before moving on.
      if (s == 1 && stages > 2 && prng->Chance(config.misroute_rate)) {
        route.push_back(1);
      }
    }
    for (size_t hop : route) {
      record(hop, bag_epcs[i], t);
      if (prng->Chance(config.reread_rate)) {
        record(hop, bag_epcs[i],
               t + prng->UniformInt(1, config.reread_delay_hi));
      }
      t += prng->UniformInt(config.hop_lo, config.hop_hi);
    }
  }
  // Upload order: batches sort by flush instant, one reader's whole
  // batch at a time, reads within a batch in local read order.
  std::sort(buffered.begin(), buffered.end(),
            [](const Buffered& a, const Buffered& b) {
              if (a.upload != b.upload) return a.upload < b.upload;
              if (a.reader != b.reader) return a.reader < b.reader;
              return a.order < b.order;
            });
  out.arrivals.reserve(buffered.size());
  for (const Buffered& b : buffered) out.arrivals.push_back(b.obs);
  out.event_order = out.arrivals;
  std::stable_sort(out.event_order.begin(), out.event_order.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

}  // namespace rfidcep::sim
