// Workload generators for the paper's §5 evaluation: an RFID-enabled
// supply chain with warehouses, shipping, retail stores, and sale to
// customers.
//
// Each generator emits raw reader observations with microsecond
// timestamps; MergeStreams interleaves them into the single time-ordered
// stream the engine consumes. All randomness flows through a seeded Prng,
// so workloads are reproducible.

#ifndef RFIDCEP_SIM_WORKLOAD_H_
#define RFIDCEP_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/prng.h"
#include "common/time.h"
#include "events/observation.h"

namespace rfidcep::sim {

using events::Observation;

// Interleaves (stable-sorts) streams by timestamp.
std::vector<Observation> MergeStreams(
    std::vector<std::vector<Observation>> streams);

// --- Packing conveyor (paper Example 1 / Rule 4) ---------------------------
//
// Each episode: `items_per_case` item observations on `item_reader` with
// consecutive gaps drawn uniformly from [item_gap_lo, item_gap_hi],
// followed by one case observation on `case_reader` after a gap drawn from
// [case_gap_lo, case_gap_hi]. Episodes start every `episode_period`.
struct PackingConfig {
  std::string item_reader = "r1";
  std::string case_reader = "r2";
  int episodes = 10;
  int items_per_case = 4;
  TimePoint start = 0;
  Duration episode_period = 60 * kSecond;
  Duration item_gap_lo = 200 * kMillisecond;
  Duration item_gap_hi = 800 * kMillisecond;
  Duration case_gap_lo = 12 * kSecond;
  Duration case_gap_hi = 18 * kSecond;
};

struct PackingEpisode {
  std::vector<std::string> item_epcs;
  std::string case_epc;
};

struct PackingWorkload {
  std::vector<Observation> observations;
  std::vector<PackingEpisode> episodes;  // Ground truth for verification.
};

// `item_epcs`/`case_epcs` supply the tag pools (consumed round-robin).
PackingWorkload GeneratePacking(const PackingConfig& config,
                                const std::vector<std::string>& item_epcs,
                                const std::vector<std::string>& case_epcs,
                                Prng* prng);

// --- Smart shelf (paper Rule 2) ---------------------------------------------
//
// The shelf reader bulk-reads every resident object every `scan_period`.
// Objects join and leave the shelf at configured times, producing infield
// and outfield transitions.
struct ShelfConfig {
  std::string reader = "shelf1";
  TimePoint start = 0;
  Duration scan_period = 30 * kSecond;
  int scans = 20;
  // Small jitter applied to each read within a scan.
  Duration read_jitter = 100 * kMillisecond;
};

struct ShelfStay {
  std::string object_epc;
  TimePoint enters;  // First scan at or after this time sees the object.
  TimePoint leaves;  // Scans at or after this time no longer see it.
};

std::vector<Observation> GenerateShelf(const ShelfConfig& config,
                                       const std::vector<ShelfStay>& stays,
                                       Prng* prng);

// --- Exit door (paper Example 2 / Rule 5) -----------------------------------
//
// Asset objects pass the exit reader; with probability
// `authorized_fraction` a superuser badge is read within
// [-escort_window, +escort_window] of the asset.
struct ExitConfig {
  std::string reader = "r4";
  TimePoint start = 0;
  Duration mean_gap = 20 * kSecond;  // Between asset passes.
  int passes = 20;
  double authorized_fraction = 0.7;
  Duration escort_window = 3 * kSecond;
};

struct ExitWorkload {
  std::vector<Observation> observations;
  int authorized = 0;
  int unauthorized = 0;
};

ExitWorkload GenerateExit(const ExitConfig& config,
                          const std::vector<std::string>& asset_epcs,
                          const std::vector<std::string>& badge_epcs,
                          Prng* prng);

// --- Shipping routes (paper Rule 3) -------------------------------------------
//
// Each object travels the reader route in order (warehouse → dock →
// shipping → retail, say), dwelling a random gap between hops. Feeding
// the resulting stream to a location-transformation rule yields a full
// validity-period chain per object in OBJECTLOCATION.
struct RouteConfig {
  std::vector<std::string> route_readers;  // Visited in order.
  TimePoint start = 0;
  Duration hop_gap_lo = 30 * kSecond;
  Duration hop_gap_hi = 5 * kMinute;
  // Departure stagger between consecutive objects.
  Duration object_stagger = 10 * kSecond;
};

std::vector<Observation> GenerateRoute(
    const RouteConfig& config, const std::vector<std::string>& object_epcs,
    Prng* prng);

// --- Duplicate noise (paper Rule 1) -------------------------------------------
//
// Returns a copy of `stream` where each observation is re-read by the same
// reader with probability `duplicate_rate`, after a delay drawn uniformly
// from [delay_lo, delay_hi]. The result is re-sorted.
std::vector<Observation> InjectDuplicates(std::vector<Observation> stream,
                                          double duplicate_rate,
                                          Duration delay_lo, Duration delay_hi,
                                          Prng* prng);

// --- Airport baggage (ROADMAP item 5: heavy out-of-order arrival) ------------
//
// Bags traverse the terminal's fixed reader stages (check-in → sorter →
// gate → claim), occasionally looping back through the sorter on a
// misroute and re-read by the same portal moments later. Stage readers
// buffer reads locally and upload them in batches every `flush_period`
// (phase-shifted per reader): `arrivals` is the stream in UPLOAD order,
// where timestamps regress heavily whenever one reader's batch lands
// after another reader's later batch — the out-of-order-heavy scenario
// named in the roadmap. `event_order` is the same multiset sorted by
// timestamp (with the burst ties the batching creates), for engines fed
// in order. Shared by bench/fig9_scalability --series=workload and the
// differential fuzzer's stream generator.
struct BaggageConfig {
  std::vector<std::string> stage_readers = {"checkin", "sorter", "gate",
                                            "claim"};
  TimePoint start = 0;
  Duration bag_stagger = 2 * kSecond;  // Departure gap between bags.
  Duration hop_lo = 1 * kSecond;       // Dwell between stages.
  Duration hop_hi = 9 * kSecond;
  double misroute_rate = 0.15;  // Chance of an extra pass through stage 1.
  double reread_rate = 0.2;     // Same-portal duplicate read.
  Duration reread_delay_hi = 500 * kMillisecond;
  Duration flush_period = 8 * kSecond;  // Per-reader upload batching.
};

struct BaggageWorkload {
  std::vector<Observation> arrivals;     // Upload order: heavy regressions.
  std::vector<Observation> event_order;  // Timestamp-sorted equivalent.
};

// `bag_epcs` supplies the tag pool (one journey per EPC).
BaggageWorkload GenerateBaggage(const BaggageConfig& config,
                                const std::vector<std::string>& bag_epcs,
                                Prng* prng);

// --- Background traffic ----------------------------------------------------------
//
// Uniform observations over the reader/object pools at `rate_per_second`,
// from `start` until `count` observations are produced. Models the bulk
// tracking traffic (location-change rules fire on every event).
std::vector<Observation> GenerateBackground(
    const std::vector<std::string>& readers,
    const std::vector<std::string>& objects, TimePoint start,
    double rate_per_second, size_t count, Prng* prng);

}  // namespace rfidcep::sim

#endif  // RFIDCEP_SIM_WORKLOAD_H_
