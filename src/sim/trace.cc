#include "sim/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rfidcep::sim {

using events::Observation;

std::string TraceToCsv(const std::vector<Observation>& stream) {
  std::string out = "# rfidcep-trace v1\n";
  for (const Observation& obs : stream) {
    out += obs.reader;
    out += ',';
    out += obs.object;
    out += ',';
    out += std::to_string(obs.timestamp);
    out += '\n';
  }
  return out;
}

Result<std::vector<Observation>> TraceFromCsv(std::string_view csv) {
  std::vector<Observation> out;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t end = csv.find('\n', start);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view line = StripWhitespace(csv.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') {
      if (end == csv.size()) break;
      continue;
    }
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 3) {
      return Status::ParseError("trace line " + std::to_string(line_number) +
                                ": expected reader,object,timestamp");
    }
    Observation obs;
    obs.reader = fields[0];
    obs.object = fields[1];
    char* parse_end = nullptr;
    obs.timestamp = std::strtoll(fields[2].c_str(), &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0') {
      return Status::ParseError("trace line " + std::to_string(line_number) +
                                ": bad timestamp '" + fields[2] + "'");
    }
    out.push_back(std::move(obs));
    if (end == csv.size()) break;
  }
  return out;
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<Observation>& stream) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  file << TraceToCsv(stream);
  return file.good() ? Status::Ok()
                     : Status::Internal("write to '" + path + "' failed");
}

Result<std::vector<Observation>> ReadTraceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return TraceFromCsv(buffer.str());
}

}  // namespace rfidcep::sim
