// CSV record/replay of observation streams.
//
// Format: one observation per line, `reader,object,timestamp_us`, with a
// `# rfidcep-trace v1` header line. Traces make simulated workloads
// shareable and benches reproducible outside the simulator.

#ifndef RFIDCEP_SIM_TRACE_H_
#define RFIDCEP_SIM_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "events/observation.h"

namespace rfidcep::sim {

// Serializes `stream` to CSV text.
std::string TraceToCsv(const std::vector<events::Observation>& stream);

// Parses CSV text produced by TraceToCsv (header optional, blank lines and
// '#' comments skipped).
Result<std::vector<events::Observation>> TraceFromCsv(std::string_view csv);

// File convenience wrappers.
Status WriteTraceFile(const std::string& path,
                      const std::vector<events::Observation>& stream);
Result<std::vector<events::Observation>> ReadTraceFile(
    const std::string& path);

}  // namespace rfidcep::sim

#endif  // RFIDCEP_SIM_TRACE_H_
