#include "sim/supply_chain.h"

#include <algorithm>
#include <cassert>

namespace rfidcep::sim {

namespace {

// Synthetic EPC manager numbers (7-digit company prefix "0614141").
constexpr uint64_t kCompanyPrefix = 614141;
constexpr int kCompanyDigits = 7;
constexpr uint64_t kItemClass = 100001;    // type "item"
constexpr uint64_t kCaseClass = 200002;    // type "case"
constexpr uint64_t kLaptopClass = 300003;  // type "laptop"
constexpr uint64_t kBadgeClass = 400004;   // type "superuser"
constexpr uint64_t kSkuClassBase = 500000;  // types "sku_0", "sku_1", ...

std::vector<std::string> MintSgtins(uint64_t item_class, int count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (int serial = 1; serial <= count; ++serial) {
    Result<epc::Epc> epc =
        epc::Epc::MakeSgtin(/*filter=*/1, kCompanyPrefix, kCompanyDigits,
                            item_class, static_cast<uint64_t>(serial));
    assert(epc.ok());
    out.push_back(epc->ToUri());
  }
  return out;
}

}  // namespace

SupplyChain::SupplyChain(SupplyChainConfig config)
    : config_(config), prng_(config.seed) {
  if (config_.num_skus > 0) {
    // Spread the item pool round-robin over the SKU classes so every
    // SKU's slice sees shelf/background traffic.
    int per_sku =
        (config_.num_items + config_.num_skus - 1) / config_.num_skus;
    for (int k = 0; k < config_.num_skus &&
                    static_cast<int>(items_.size()) < config_.num_items;
         ++k) {
      int count = std::min(
          per_sku, config_.num_items - static_cast<int>(items_.size()));
      std::vector<std::string> slice =
          MintSgtins(kSkuClassBase + static_cast<uint64_t>(k), count);
      items_.insert(items_.end(), slice.begin(), slice.end());
    }
  } else {
    items_ = MintSgtins(kItemClass, config_.num_items);
  }
  cases_ = MintSgtins(kCaseClass, config_.num_cases);
  laptops_ = MintSgtins(kLaptopClass, config_.num_laptops);
  badges_ = MintSgtins(kBadgeClass, config_.num_badges);

  Status st;
  st = catalog_.RegisterItemClass(kCompanyPrefix, kCompanyDigits, kItemClass,
                                  "item");
  assert(st.ok());
  st = catalog_.RegisterItemClass(kCompanyPrefix, kCompanyDigits, kCaseClass,
                                  "case");
  assert(st.ok());
  st = catalog_.RegisterItemClass(kCompanyPrefix, kCompanyDigits, kLaptopClass,
                                  "laptop");
  assert(st.ok());
  st = catalog_.RegisterItemClass(kCompanyPrefix, kCompanyDigits, kBadgeClass,
                                  "superuser");
  assert(st.ok());
  for (int k = 0; k < config_.num_skus; ++k) {
    st = catalog_.RegisterItemClass(kCompanyPrefix, kCompanyDigits,
                                    kSkuClassBase + static_cast<uint64_t>(k),
                                    "sku_" + std::to_string(k));
    assert(st.ok());
  }
  (void)st;

  for (int s = 0; s < config_.num_sites; ++s) {
    std::string site = std::to_string(s);
    readers_.RegisterReader(PackItemReader(s), "g_pack_item_" + site,
                            "loc_pack_" + site);
    readers_.RegisterReader(PackCaseReader(s), "g_pack_case_" + site,
                            "loc_pack_" + site);
    readers_.RegisterReader(ShelfReader(s), "g_shelf_" + site,
                            "loc_shelf_" + site);
    readers_.RegisterReader(ExitReader(s), "g_exit_" + site,
                            "loc_exit_" + site);
    readers_.RegisterReader(DockReader(s), "g_dock_" + site,
                            "loc_dock_" + site);
    readers_.RegisterReader(PosReader(s), "g_pos_" + site,
                            "loc_pos_" + site);
  }
}

std::string SupplyChain::PackItemReader(int site) const {
  return "r_pack_item_" + std::to_string(site);
}
std::string SupplyChain::PackCaseReader(int site) const {
  return "r_pack_case_" + std::to_string(site);
}
std::string SupplyChain::ShelfReader(int site) const {
  return "r_shelf_" + std::to_string(site);
}
std::string SupplyChain::ExitReader(int site) const {
  return "r_exit_" + std::to_string(site);
}
std::string SupplyChain::DockReader(int site) const {
  return "r_dock_" + std::to_string(site);
}
std::string SupplyChain::PosReader(int site) const {
  return "r_pos_" + std::to_string(site);
}

std::string SupplyChain::PaperRuleProgram() const {
  return R"(
DEFINE E1 = observation("g_pack_item_0", o1, t1)
DEFINE E2 = observation("g_pack_case_0", o2, t2)
DEFINE E4 = observation("g_exit_0", o4, t4), type(o4) = "laptop"
DEFINE E5 = observation("g_exit_0", o5, t5), type(o5) = "superuser"

CREATE RULE r1, duplicate detection rule
ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
IF true
DO send duplicate msg(observation(r, o, t1))

CREATE RULE r2, infield filtering
ON WITHIN(NOT observation(r, o, t1), group(r) = "g_shelf_0";
          observation(r, o, t2), group(r) = "g_shelf_0", 30sec)
IF true
DO INSERT INTO OBSERVATION VALUES (r, o, t2)

CREATE RULE r3, location change rule
ON observation(r, o, t), group(r) = "g_dock_0"
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = "UC";
   INSERT INTO OBJECTLOCATION VALUES (o, "loc_dock_0", t, "UC")

CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, "UC")

CREATE RULE r5, asset monitoring rule
ON WITHIN(E4 AND NOT E5, 5sec)
IF true
DO send alarm
)";
}

std::string SupplyChain::SaleRuleProgram() const {
  return R"(
CREATE RULE r6, sale rule
ON observation(r, o, t), group(r) = "g_pos_0"
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = "UC";
   INSERT INTO OBJECTLOCATION VALUES (o, "sold", t, "UC");
   UPDATE OBJECTCONTAINMENT SET tend = t WHERE object_epc = o AND
     tend = "UC"
)";
}

std::string SupplyChain::GeneratedRuleProgram(int num_rules) const {
  std::string program;
  for (int i = 0; i < num_rules; ++i) {
    int site = i % std::max(1, config_.num_sites);
    std::string s = std::to_string(site);
    std::string id = "gen" + std::to_string(i);
    int jitter = (i / 5) % 5;  // Varies windows so rules stay distinct.
    switch (i % 5) {
      case 0: {  // Duplicate filtering with varying window.
        std::string tv1 = "t1";
        std::string tv2 = "t2";
        program += "CREATE RULE " + id + ", generated duplicate rule\n";
        program += "ON WITHIN(observation(r, o, " + tv1 +
                   "); observation(r, o, " + tv2 + "), " +
                   std::to_string(4 + jitter) + "sec)\n";
        program += "IF true\nDO send duplicate msg\n\n";
        break;
      }
      case 1: {  // Infield filtering on the site's shelf.
        program += "CREATE RULE " + id + ", generated infield rule\n";
        program += "ON WITHIN(NOT observation(r, o, t1), group(r) = "
                   "\"g_shelf_" + s + "\"; observation(r, o, t2), group(r) = "
                   "\"g_shelf_" + s + "\", " + std::to_string(30 + jitter) +
                   "sec)\n";
        program += "IF true\nDO INSERT INTO OBSERVATION VALUES (r, o, t2)\n\n";
        break;
      }
      case 2: {  // Location transformation on the site's dock.
        program += "CREATE RULE " + id + ", generated location rule\n";
        program += "ON observation(r, o, t), group(r) = \"g_dock_" + s +
                   "\"\n";
        program += "IF true\n";
        program += "DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = "
                   "o AND tend = \"UC\"; INSERT INTO OBJECTLOCATION VALUES "
                   "(o, \"loc_dock_" + s + "\", t, \"UC\")\n\n";
        break;
      }
      case 3: {  // Containment aggregation on the site's conveyor.
        program += "CREATE RULE " + id + ", generated containment rule\n";
        program += "ON TSEQ(TSEQ+(observation(\"g_pack_item_" + s +
                   "\", o1, t1), 0.1sec, 1sec); observation(\"g_pack_case_" +
                   s + "\", o2, t2), 10sec, " + std::to_string(20 + jitter) +
                   "sec)\n";
        program += "IF true\nDO BULK INSERT INTO OBJECTCONTAINMENT VALUES "
                   "(o1, o2, t2, \"UC\")\n\n";
        break;
      }
      case 4: {  // Asset monitoring on the site's exit.
        program += "CREATE RULE " + id + ", generated monitoring rule\n";
        program += "ON WITHIN(observation(\"g_exit_" + s +
                   "\", o4, t4), type(o4) = \"laptop\" AND NOT observation("
                   "\"g_exit_" + s + "\", o5, t5), type(o5) = \"superuser\", " +
                   std::to_string(5 + jitter) + "sec)\n";
        program += "IF true\nDO send alarm\n\n";
        break;
      }
    }
  }
  return program;
}

std::string SupplyChain::SkuSiteRuleProgram(int num_rules) const {
  assert(config_.num_skus > 0);
  int sites = std::max(1, config_.num_sites);
  int skus = std::max(1, config_.num_skus);
  std::string program;
  for (int i = 0; i < num_rules; ++i) {
    int site = i % sites;
    int sku = (i / sites) % skus;
    // Rules past the cross product revisit a (site, SKU) pair with a
    // different window, staying structurally distinct.
    int wave = i / (sites * skus);
    std::string s = std::to_string(site);
    std::string k = std::to_string(sku);
    std::string w = std::to_string(4 + wave % 5);
    program += "CREATE RULE sku" + std::to_string(i) +
               ", sku site duplicate rule\n";
    program += "ON WITHIN(observation(r, o, t1), group(r) = \"g_shelf_" + s +
               "\", type(o) = \"sku_" + k +
               "\"; observation(r, o, t2), group(r) = \"g_shelf_" + s +
               "\", type(o) = \"sku_" + k + "\", " + w + "sec)\n";
    program += "IF true\nDO send duplicate msg\n\n";
  }
  return program;
}

std::vector<Observation> SupplyChain::GenerateStream(size_t total_events) {
  last_packing_episodes_.clear();
  last_unauthorized_exits_ = 0;

  int sites = std::max(1, config_.num_sites);
  // Plan pre-duplication volume so the final stream lands near the target.
  double base_total =
      static_cast<double>(total_events) / (1.0 + config_.duplicate_rate);
  Duration horizon = static_cast<Duration>(
      base_total / config_.arrival_rate_per_second * kSecond);
  horizon = std::max<Duration>(horizon, kSecond);

  size_t packing_target =
      static_cast<size_t>(base_total * config_.packing_fraction);
  size_t shelf_target =
      static_cast<size_t>(base_total * config_.shelf_fraction);
  size_t exit_target = static_cast<size_t>(base_total * config_.exit_fraction);

  std::vector<std::vector<Observation>> streams;

  // Packing episodes (Rule 4 patterns). One physical conveyor can run at
  // most one episode per ~30s without merging adjacent TSEQ+ runs, so the
  // packing volume is capped at what the sites' conveyors physically fit
  // within the horizon; the unconstrained background tracking traffic
  // below absorbs the rest of the arrival-rate budget.
  constexpr Duration kEpisodePeriod = 30 * kSecond;
  size_t events_per_episode =
      static_cast<size_t>(config_.items_per_case) + 1;
  size_t episodes_wanted =
      std::max<size_t>(1, packing_target / events_per_episode);
  size_t episodes_per_site = std::max<size_t>(
      1, static_cast<size_t>(horizon / kEpisodePeriod));
  size_t planned = 0;
  for (int s = 0; s < sites; ++s) {
    size_t share = std::max<size_t>(
        1, episodes_wanted / static_cast<size_t>(sites));
    size_t episodes = std::min(share, episodes_per_site);
    PackingConfig pc;
    pc.item_reader = PackItemReader(s);
    pc.case_reader = PackCaseReader(s);
    pc.episodes = static_cast<int>(episodes);
    pc.items_per_case = config_.items_per_case;
    pc.start = prng_.UniformInt(0, kSecond);
    pc.episode_period = kEpisodePeriod;
    PackingWorkload packing = GeneratePacking(pc, items_, cases_, &prng_);
    planned += packing.observations.size();
    streams.push_back(std::move(packing.observations));
    for (PackingEpisode& episode : packing.episodes) {
      last_packing_episodes_.push_back(std::move(episode));
    }
  }

  // Smart shelf traffic (Rule 2 patterns).
  for (int s = 0; s < sites; ++s) {
    ShelfConfig sc;
    sc.reader = ShelfReader(s);
    sc.start = prng_.UniformInt(0, 2 * kSecond);
    sc.scans = static_cast<int>(
        std::max<Duration>(1, horizon / sc.scan_period));
    size_t site_target =
        std::max<size_t>(1, shelf_target / static_cast<size_t>(sites));
    size_t avg_reads_per_stay = std::max<size_t>(1, sc.scans / 2);
    size_t num_stays = std::max<size_t>(1, site_target / avg_reads_per_stay);
    std::vector<ShelfStay> stays;
    for (size_t k = 0; k < num_stays; ++k) {
      ShelfStay stay;
      stay.object_epc =
          items_[static_cast<size_t>(prng_.UniformInt(
              0, static_cast<int64_t>(items_.size()) - 1))];
      TimePoint enters = prng_.UniformInt(0, horizon / 2);
      TimePoint leaves = enters + prng_.UniformInt(horizon / 4, horizon);
      stay.enters = enters;
      stay.leaves = leaves;
      stays.push_back(std::move(stay));
    }
    std::vector<Observation> shelf = GenerateShelf(sc, stays, &prng_);
    planned += shelf.size();
    streams.push_back(std::move(shelf));
  }

  // Exit-door traffic (Rule 5 patterns).
  for (int s = 0; s < sites; ++s) {
    ExitConfig ec;
    ec.reader = ExitReader(s);
    ec.start = prng_.UniformInt(0, 2 * kSecond);
    size_t site_target =
        std::max<size_t>(2, exit_target / static_cast<size_t>(sites));
    // One exit door processes at most ~1 pass per 2s; excess volume goes
    // to background traffic instead of stretching the horizon.
    size_t passes_cap = std::max<size_t>(
        1, static_cast<size_t>(horizon / (2 * kSecond)));
    ec.passes = static_cast<int>(std::min(site_target / 2 + 1, passes_cap));
    ec.mean_gap = horizon / static_cast<Duration>(ec.passes);
    ExitWorkload exits = GenerateExit(ec, laptops_, badges_, &prng_);
    planned += exits.observations.size();
    last_unauthorized_exits_ += exits.unauthorized;
    streams.push_back(std::move(exits.observations));
  }

  // Point-of-sale traffic (sale rule work): uniform sales of items.
  size_t pos_target = static_cast<size_t>(base_total * config_.pos_fraction);
  if (pos_target > 0) {
    std::vector<std::string> pos_readers;
    for (int s = 0; s < sites; ++s) pos_readers.push_back(PosReader(s));
    double pos_rate =
        static_cast<double>(pos_target) /
        (static_cast<double>(horizon) / kSecond);
    streams.push_back(GenerateBackground(pos_readers, items_, 0,
                                         std::max(pos_rate, 1.0), pos_target,
                                         &prng_));
    planned += pos_target;
  }

  // Background tracking traffic on the dock readers (Rule 3 work).
  size_t base_count = static_cast<size_t>(base_total);
  if (planned < base_count) {
    std::vector<std::string> dock_readers;
    for (int s = 0; s < sites; ++s) dock_readers.push_back(DockReader(s));
    double remaining = static_cast<double>(base_count - planned);
    double background_rate =
        remaining / (static_cast<double>(horizon) / kSecond);
    streams.push_back(GenerateBackground(dock_readers, items_, 0,
                                         std::max(background_rate, 1.0),
                                         base_count - planned, &prng_));
  }

  std::vector<Observation> merged = MergeStreams(std::move(streams));
  merged = InjectDuplicates(std::move(merged), config_.duplicate_rate,
                            200 * kMillisecond, 2 * kSecond, &prng_);
  // No tail-trimming: cutting the latest events would amputate in-flight
  // packing episodes. Callers get total_events +/- a few percent.
  return merged;
}

}  // namespace rfidcep::sim
