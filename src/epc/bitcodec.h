// Fixed-width big-endian bit packing helpers for 96-bit EPC binary encodings.
//
// EPC Tag Data Standard encodings address bits from the most significant bit
// of the tag (bit 0 = MSB of byte 0). BitWriter/BitReader operate over a
// 12-byte buffer in that order.

#ifndef RFIDCEP_EPC_BITCODEC_H_
#define RFIDCEP_EPC_BITCODEC_H_

#include <array>
#include <cstdint>

namespace rfidcep::epc {

// 96 bits = 12 bytes, MSB-first.
using EpcBits = std::array<uint8_t, 12>;

class BitWriter {
 public:
  explicit BitWriter(EpcBits* bits) : bits_(bits) { bits_->fill(0); }

  // Appends the low `width` bits of `value`, MSB-first. `width` <= 64.
  // Bits beyond the buffer are dropped (callers size fields to fit).
  void Write(uint64_t value, int width) {
    for (int i = width - 1; i >= 0; --i) {
      if (pos_ >= 96) return;
      uint64_t bit = (value >> i) & 1;
      if (bit) (*bits_)[pos_ / 8] |= static_cast<uint8_t>(0x80u >> (pos_ % 8));
      ++pos_;
    }
  }

  int position() const { return pos_; }

 private:
  EpcBits* bits_;
  int pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const EpcBits& bits) : bits_(bits) {}

  // Reads `width` bits MSB-first. Reads past the buffer return zero bits.
  uint64_t Read(int width) {
    uint64_t value = 0;
    for (int i = 0; i < width; ++i) {
      value <<= 1;
      if (pos_ < 96) {
        value |= (bits_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
      }
      ++pos_;
    }
    return value;
  }

  int position() const { return pos_; }

 private:
  const EpcBits& bits_;
  int pos_ = 0;
};

}  // namespace rfidcep::epc

#endif  // RFIDCEP_EPC_BITCODEC_H_
