// User-defined mapping functions over EPC attributes (paper §2.1):
//
//   * type(o)  — the object type of a tag EPC, resolved either from the
//     EPC's item class (SGTIN company prefix + item reference) or from an
//     exact per-EPC override ("specified by a user with a mapping function").
//   * group(r) — the reader group a reader EPC belongs to. Readers with no
//     registered group default to a singleton group named by the reader EPC
//     itself, matching the paper's default
//     E = observation('r', o, t)  <=>  group(r) = 'r'.
//
// Both catalogs are plain string-keyed maps so applications can also use
// opaque (non-TDS) identifiers such as "r1" or "case1" — the paper's
// examples do exactly that.

#ifndef RFIDCEP_EPC_CATALOG_H_
#define RFIDCEP_EPC_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "epc/epc.h"

namespace rfidcep::epc {

class ProductCatalog {
 public:
  // Associates every serial of the SGTIN item class identified by
  // (company_prefix, company_digits, item_reference) with `type_name`.
  Status RegisterItemClass(uint64_t company_prefix, int company_digits,
                           uint64_t item_reference, std::string type_name);

  // Associates one exact EPC string with `type_name`, overriding any item
  // class mapping. Accepts arbitrary identifiers.
  void RegisterExact(std::string epc, std::string type_name);

  // Resolves type(o). Resolution order: exact override, then SGTIN item
  // class (when `epc` parses as an EPC URI), then "" (unknown).
  std::string TypeOf(std::string_view epc) const;

  // Allocation-free variant for the per-observation path. The returned
  // view aliases the catalog (valid until the next registration) and is
  // empty for unknown EPCs.
  std::string_view TypeViewOf(std::string_view epc) const;

  size_t size() const { return by_class_.size() + exact_.size(); }

 private:
  StringViewMap<std::string> by_class_;  // ClassKey -> type
  StringViewMap<std::string> exact_;     // EPC -> type
};

class ReaderRegistry {
 public:
  struct ReaderInfo {
    std::string group;        // Reader group for group(r).
    std::string location_id;  // Symbolic location the reader signals.
  };

  // Registers a reader with its group and the symbolic location it covers.
  // Re-registering a reader overwrites its entry.
  void RegisterReader(std::string reader_epc, std::string group,
                      std::string location_id);

  // group(r): the registered group, or `reader_epc` itself if unregistered
  // (the paper's default).
  std::string GroupOf(std::string_view reader_epc) const;

  // The symbolic location of a reader, or "" if unregistered.
  std::string LocationOf(std::string_view reader_epc) const;

  // Allocation-free variants for the per-observation path. The returned
  // views alias either the registry (valid until re-registration) or
  // `reader_epc` itself (GroupViewOf's unregistered default).
  std::string_view GroupViewOf(std::string_view reader_epc) const;
  std::string_view LocationViewOf(std::string_view reader_epc) const;

  // All readers registered in `group`, in registration order.
  std::vector<std::string> ReadersInGroup(std::string_view group) const;

  size_t size() const { return readers_.size(); }

 private:
  StringViewMap<ReaderInfo> readers_;
  std::vector<std::string> registration_order_;
};

}  // namespace rfidcep::epc

#endif  // RFIDCEP_EPC_CATALOG_H_
