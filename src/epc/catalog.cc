#include "epc/catalog.h"

namespace rfidcep::epc {

Status ProductCatalog::RegisterItemClass(uint64_t company_prefix,
                                         int company_digits,
                                         uint64_t item_reference,
                                         std::string type_name) {
  RFIDCEP_ASSIGN_OR_RETURN(
      Epc epc, Epc::MakeSgtin(/*filter=*/0, company_prefix, company_digits,
                              item_reference, /*serial=*/0));
  by_class_[epc.ClassKey()] = std::move(type_name);
  return Status::Ok();
}

void ProductCatalog::RegisterExact(std::string epc, std::string type_name) {
  exact_[std::move(epc)] = std::move(type_name);
}

std::string ProductCatalog::TypeOf(std::string_view epc) const {
  return std::string(TypeViewOf(epc));
}

std::string_view ProductCatalog::TypeViewOf(std::string_view epc) const {
  if (auto it = exact_.find(epc); it != exact_.end()) {
    return it->second;
  }
  Result<Epc> parsed = Epc::FromUri(epc);
  if (parsed.ok()) {
    if (auto it = by_class_.find(parsed->ClassKey()); it != by_class_.end()) {
      return it->second;
    }
  }
  return {};
}

void ReaderRegistry::RegisterReader(std::string reader_epc, std::string group,
                                    std::string location_id) {
  auto [it, inserted] = readers_.try_emplace(reader_epc);
  it->second = ReaderInfo{std::move(group), std::move(location_id)};
  if (inserted) registration_order_.push_back(std::move(reader_epc));
}

std::string ReaderRegistry::GroupOf(std::string_view reader_epc) const {
  return std::string(GroupViewOf(reader_epc));
}

std::string ReaderRegistry::LocationOf(std::string_view reader_epc) const {
  return std::string(LocationViewOf(reader_epc));
}

std::string_view ReaderRegistry::GroupViewOf(std::string_view reader_epc) const {
  if (auto it = readers_.find(reader_epc); it != readers_.end()) {
    return it->second.group;
  }
  return reader_epc;
}

std::string_view ReaderRegistry::LocationViewOf(
    std::string_view reader_epc) const {
  if (auto it = readers_.find(reader_epc); it != readers_.end()) {
    return it->second.location_id;
  }
  return {};
}

std::vector<std::string> ReaderRegistry::ReadersInGroup(
    std::string_view group) const {
  std::vector<std::string> out;
  for (const std::string& reader : registration_order_) {
    auto it = readers_.find(reader);
    if (it != readers_.end() && it->second.group == group) {
      out.push_back(reader);
    }
  }
  return out;
}

}  // namespace rfidcep::epc
