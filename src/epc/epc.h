// Electronic Product Code (EPC) identifiers, per EPC Tag Data Standard v1.1
// (the paper's reference [1]).
//
// We implement the three schemes the paper's scenarios need:
//   * SGTIN-96 — serialized trade items (the tagged objects: laptops, cases,
//     pallets, retail items),
//   * SSCC-96  — serial shipping container codes (logistic units),
//   * SGLN-96  — global location numbers with extension (readers/locations).
//
// An Epc can be converted between its decomposed fields, the pure-identity
// tag URI (e.g. "urn:epc:id:sgtin:0614141.100734.2"), and the 96-bit binary
// tag encoding. Leading zeros in URI fields are significant and preserved
// via the partition-table digit counts.

#ifndef RFIDCEP_EPC_EPC_H_
#define RFIDCEP_EPC_EPC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "epc/bitcodec.h"

namespace rfidcep::epc {

enum class Scheme : uint8_t {
  kSgtin96 = 0,
  kSscc96 = 1,
  kSgln96 = 2,
  kGid96 = 3,
};

std::string_view SchemeName(Scheme scheme);

// Binary header bytes per TDS 1.1 §3.
inline constexpr uint8_t kHeaderSgtin96 = 0x30;
inline constexpr uint8_t kHeaderSscc96 = 0x31;
inline constexpr uint8_t kHeaderSgln96 = 0x32;
inline constexpr uint8_t kHeaderGid96 = 0x35;

// One row of a TDS partition table: how the 44 bits shared between the
// company prefix and the reference field are split for a given partition
// value, and how many decimal digits each field carries in the URI.
struct PartitionRow {
  int company_bits;
  int company_digits;
  int reference_bits;
  int reference_digits;
};

// Returns the partition row for (scheme, partition), or an error if the
// partition value is outside [0, 6].
Result<PartitionRow> PartitionFor(Scheme scheme, int partition);

// Returns the partition value whose company-prefix digit count matches
// `company_digits` for `scheme` (TDS: partition is determined by the length
// of the company prefix).
Result<int> PartitionForCompanyDigits(Scheme scheme, int company_digits);

class Epc {
 public:
  // Builds an SGTIN-96. `company_digits` in [6,12]; `item_reference`
  // includes the indicator digit and must fit the partition's digit count;
  // `serial` < 2^38.
  static Result<Epc> MakeSgtin(int filter, uint64_t company_prefix,
                               int company_digits, uint64_t item_reference,
                               uint64_t serial);

  // Builds an SSCC-96. `serial_reference` includes the extension digit.
  static Result<Epc> MakeSscc(int filter, uint64_t company_prefix,
                              int company_digits, uint64_t serial_reference);

  // Builds an SGLN-96. `extension` < 2^41 identifies a sub-location.
  static Result<Epc> MakeSgln(int filter, uint64_t company_prefix,
                              int company_digits, uint64_t location_reference,
                              uint64_t extension);

  // Builds a GID-96 (general identifier, for non-GS1 numbering):
  // `manager` < 2^28, `object_class` < 2^24, `serial` < 2^36. GID has no
  // filter or partition.
  static Result<Epc> MakeGid(uint64_t manager, uint64_t object_class,
                             uint64_t serial);

  // Parses a pure-identity URI, e.g. "urn:epc:id:sgtin:0614141.100734.2".
  static Result<Epc> FromUri(std::string_view uri);

  // Decodes a 96-bit binary tag value.
  static Result<Epc> FromBinary(const EpcBits& bits);

  // Encodes to the 96-bit binary form.
  EpcBits ToBinary() const;

  // Renders the pure-identity URI.
  std::string ToUri() const;

  Scheme scheme() const { return scheme_; }
  int filter() const { return filter_; }
  int partition() const { return partition_; }
  uint64_t company_prefix() const { return company_prefix_; }
  int company_digits() const;
  uint64_t reference() const { return reference_; }
  int reference_digits() const;
  // Serial for SGTIN, extension for SGLN; always 0 for SSCC.
  uint64_t serial() const { return serial_; }

  // The "item class" identity, ignoring the serial number — e.g.
  // "sgtin:0614141.100734". Used by catalogs to map EPCs to object types.
  std::string ClassKey() const;

  friend bool operator==(const Epc& a, const Epc& b) {
    return a.scheme_ == b.scheme_ && a.filter_ == b.filter_ &&
           a.partition_ == b.partition_ &&
           a.company_prefix_ == b.company_prefix_ &&
           a.reference_ == b.reference_ && a.serial_ == b.serial_;
  }

 private:
  Epc(Scheme scheme, int filter, int partition, uint64_t company_prefix,
      uint64_t reference, uint64_t serial)
      : scheme_(scheme),
        filter_(filter),
        partition_(partition),
        company_prefix_(company_prefix),
        reference_(reference),
        serial_(serial) {}

  Scheme scheme_;
  int filter_;
  int partition_;
  uint64_t company_prefix_;
  uint64_t reference_;
  uint64_t serial_;
};

}  // namespace rfidcep::epc

#endif  // RFIDCEP_EPC_EPC_H_
