#include "epc/epc.h"

#include <cinttypes>
#include <cstdio>

#include "common/strings.h"

namespace rfidcep::epc {

namespace {

// Bit width of the non-partitioned trailing field per scheme:
// SGTIN-96 serial = 38 bits, SGLN-96 extension = 41 bits, SSCC-96 has a
// 24-bit unallocated tail instead.
constexpr int kSgtinSerialBits = 38;
constexpr int kSgln96ExtensionBits = 41;
constexpr int kSsccPaddingBits = 24;
// GID-96 layout: 8-bit header, 28-bit manager, 24-bit class, 36-bit serial.
constexpr int kGidManagerBits = 28;
constexpr int kGidClassBits = 24;
constexpr int kGidSerialBits = 36;

// TDS 1.1 partition tables. Indexed by partition value 0..6. The company
// prefix always has 12 - partition digits.
constexpr PartitionRow kSgtinPartitions[7] = {
    {40, 12, 4, 1},  {37, 11, 7, 2},  {34, 10, 10, 3}, {30, 9, 14, 4},
    {27, 8, 17, 5},  {24, 7, 20, 6},  {20, 6, 24, 7},
};
constexpr PartitionRow kSsccPartitions[7] = {
    {40, 12, 18, 5}, {37, 11, 21, 6}, {34, 10, 24, 7}, {30, 9, 28, 8},
    {27, 8, 31, 9},  {24, 7, 34, 10}, {20, 6, 38, 11},
};
constexpr PartitionRow kSglnPartitions[7] = {
    {40, 12, 1, 0},  {37, 11, 4, 1},  {34, 10, 7, 2},  {30, 9, 11, 3},
    {27, 8, 14, 4},  {24, 7, 17, 5},  {20, 6, 21, 6},
};

uint64_t Pow10(int digits) {
  uint64_t v = 1;
  for (int i = 0; i < digits; ++i) v *= 10;
  return v;
}

Status CheckDigits(std::string_view field, uint64_t value, int digits) {
  if (digits < 20 && value >= Pow10(digits)) {
    return Status::InvalidArgument(std::string(field) + " value " +
                                   std::to_string(value) +
                                   " does not fit in " +
                                   std::to_string(digits) + " digits");
  }
  return Status::Ok();
}

Status CheckBits(std::string_view field, uint64_t value, int bits) {
  if (bits < 64 && value >= (uint64_t{1} << bits)) {
    return Status::InvalidArgument(std::string(field) + " value " +
                                   std::to_string(value) +
                                   " does not fit in " + std::to_string(bits) +
                                   " bits");
  }
  return Status::Ok();
}

Status CheckFilter(int filter) {
  if (filter < 0 || filter > 7) {
    return Status::InvalidArgument("filter value " + std::to_string(filter) +
                                   " outside [0,7]");
  }
  return Status::Ok();
}

// Zero-padded decimal rendering, e.g. (42, 4) -> "0042". A zero-digit
// field (SGLN partition 0 location reference) renders empty.
std::string PadDecimal(uint64_t value, int digits) {
  if (digits == 0) return "";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*" PRIu64, digits, value);
  return buf;
}

// Parses a decimal field of exactly `digits` digits (or any length when
// digits < 0). Rejects empty and non-digit input.
Result<uint64_t> ParseDecimalField(std::string_view field, std::string_view s,
                                   int digits) {
  if (digits >= 0 && static_cast<int>(s.size()) != digits) {
    return Status::InvalidArgument(std::string(field) + " field '" +
                                   std::string(s) + "' must have exactly " +
                                   std::to_string(digits) + " digits");
  }
  if (s.empty() && digits != 0) {
    return Status::InvalidArgument(std::string(field) + " field is empty");
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string(field) + " field '" +
                                     std::string(s) + "' is not numeric");
    }
    if (value > (UINT64_MAX - (c - '0')) / 10) {
      return Status::OutOfRange(std::string(field) + " field '" +
                                std::string(s) + "' overflows");
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

int TrailingBits(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSgtin96:
      return kSgtinSerialBits;
    case Scheme::kSscc96:
      return 0;
    case Scheme::kSgln96:
      return kSgln96ExtensionBits;
    case Scheme::kGid96:
      return kGidSerialBits;
  }
  return 0;
}

uint8_t HeaderFor(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSgtin96:
      return kHeaderSgtin96;
    case Scheme::kSscc96:
      return kHeaderSscc96;
    case Scheme::kSgln96:
      return kHeaderSgln96;
    case Scheme::kGid96:
      return kHeaderGid96;
  }
  return 0;
}

}  // namespace

std::string_view SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSgtin96:
      return "sgtin";
    case Scheme::kSscc96:
      return "sscc";
    case Scheme::kSgln96:
      return "sgln";
    case Scheme::kGid96:
      return "gid";
  }
  return "unknown";
}

Result<PartitionRow> PartitionFor(Scheme scheme, int partition) {
  if (partition < 0 || partition > 6) {
    return Status::InvalidArgument("partition value " +
                                   std::to_string(partition) +
                                   " outside [0,6]");
  }
  switch (scheme) {
    case Scheme::kSgtin96:
      return kSgtinPartitions[partition];
    case Scheme::kSscc96:
      return kSsccPartitions[partition];
    case Scheme::kSgln96:
      return kSglnPartitions[partition];
    case Scheme::kGid96:
      return Status::InvalidArgument("GID-96 has no partition table");
  }
  return Status::Internal("unknown scheme");
}

Result<int> PartitionForCompanyDigits(Scheme scheme, int company_digits) {
  (void)scheme;  // All three schemes use digits = 12 - partition.
  int partition = 12 - company_digits;
  if (partition < 0 || partition > 6) {
    return Status::InvalidArgument(
        "company prefix must have 6..12 digits, got " +
        std::to_string(company_digits));
  }
  return partition;
}

Result<Epc> Epc::MakeSgtin(int filter, uint64_t company_prefix,
                           int company_digits, uint64_t item_reference,
                           uint64_t serial) {
  RFIDCEP_RETURN_IF_ERROR(CheckFilter(filter));
  RFIDCEP_ASSIGN_OR_RETURN(
      int partition, PartitionForCompanyDigits(Scheme::kSgtin96, company_digits));
  RFIDCEP_ASSIGN_OR_RETURN(PartitionRow row,
                           PartitionFor(Scheme::kSgtin96, partition));
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("company prefix", company_prefix, row.company_digits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("item reference", item_reference, row.reference_digits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckBits("item reference", item_reference, row.reference_bits));
  RFIDCEP_RETURN_IF_ERROR(CheckBits("serial", serial, kSgtinSerialBits));
  return Epc(Scheme::kSgtin96, filter, partition, company_prefix,
             item_reference, serial);
}

Result<Epc> Epc::MakeSscc(int filter, uint64_t company_prefix,
                          int company_digits, uint64_t serial_reference) {
  RFIDCEP_RETURN_IF_ERROR(CheckFilter(filter));
  RFIDCEP_ASSIGN_OR_RETURN(
      int partition, PartitionForCompanyDigits(Scheme::kSscc96, company_digits));
  RFIDCEP_ASSIGN_OR_RETURN(PartitionRow row,
                           PartitionFor(Scheme::kSscc96, partition));
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("company prefix", company_prefix, row.company_digits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("serial reference", serial_reference, row.reference_digits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckBits("serial reference", serial_reference, row.reference_bits));
  return Epc(Scheme::kSscc96, filter, partition, company_prefix,
             serial_reference, /*serial=*/0);
}

Result<Epc> Epc::MakeSgln(int filter, uint64_t company_prefix,
                          int company_digits, uint64_t location_reference,
                          uint64_t extension) {
  RFIDCEP_RETURN_IF_ERROR(CheckFilter(filter));
  RFIDCEP_ASSIGN_OR_RETURN(
      int partition, PartitionForCompanyDigits(Scheme::kSgln96, company_digits));
  RFIDCEP_ASSIGN_OR_RETURN(PartitionRow row,
                           PartitionFor(Scheme::kSgln96, partition));
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("company prefix", company_prefix, row.company_digits));
  RFIDCEP_RETURN_IF_ERROR(CheckDigits("location reference", location_reference,
                                      row.reference_digits));
  RFIDCEP_RETURN_IF_ERROR(CheckBits("location reference", location_reference,
                                    row.reference_bits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckBits("extension", extension, kSgln96ExtensionBits));
  return Epc(Scheme::kSgln96, filter, partition, company_prefix,
             location_reference, extension);
}

Result<Epc> Epc::MakeGid(uint64_t manager, uint64_t object_class,
                         uint64_t serial) {
  RFIDCEP_RETURN_IF_ERROR(CheckBits("manager", manager, kGidManagerBits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckBits("object class", object_class, kGidClassBits));
  RFIDCEP_RETURN_IF_ERROR(CheckBits("serial", serial, kGidSerialBits));
  return Epc(Scheme::kGid96, /*filter=*/0, /*partition=*/0, manager,
             object_class, serial);
}

int Epc::company_digits() const { return 12 - partition_; }

int Epc::reference_digits() const {
  if (scheme_ == Scheme::kGid96) return 0;  // GID fields are unpadded.
  Result<PartitionRow> row = PartitionFor(scheme_, partition_);
  return row.ok() ? row->reference_digits : 0;
}

Result<Epc> Epc::FromUri(std::string_view uri) {
  constexpr std::string_view kPrefix = "urn:epc:id:";
  if (!StartsWith(uri, kPrefix)) {
    return Status::InvalidArgument("EPC URI must start with 'urn:epc:id:': '" +
                                   std::string(uri) + "'");
  }
  std::string_view rest = uri.substr(kPrefix.size());
  size_t colon = rest.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("EPC URI missing scheme separator: '" +
                                   std::string(uri) + "'");
  }
  std::string_view scheme_name = rest.substr(0, colon);
  std::vector<std::string> fields = Split(rest.substr(colon + 1), '.');

  Scheme scheme;
  size_t expected_fields;
  if (scheme_name == "gid") {
    std::vector<std::string> gid_fields = Split(rest.substr(colon + 1), '.');
    if (gid_fields.size() != 3) {
      return Status::InvalidArgument(
          "EPC URI for scheme 'gid' needs 3 dot-separated fields");
    }
    RFIDCEP_ASSIGN_OR_RETURN(
        uint64_t manager, ParseDecimalField("manager", gid_fields[0], -1));
    RFIDCEP_ASSIGN_OR_RETURN(
        uint64_t object_class,
        ParseDecimalField("object class", gid_fields[1], -1));
    RFIDCEP_ASSIGN_OR_RETURN(uint64_t serial,
                             ParseDecimalField("serial", gid_fields[2], -1));
    return MakeGid(manager, object_class, serial);
  }
  if (scheme_name == "sgtin") {
    scheme = Scheme::kSgtin96;
    expected_fields = 3;
  } else if (scheme_name == "sscc") {
    scheme = Scheme::kSscc96;
    expected_fields = 2;
  } else if (scheme_name == "sgln") {
    scheme = Scheme::kSgln96;
    expected_fields = 3;
  } else {
    return Status::InvalidArgument("unsupported EPC scheme '" +
                                   std::string(scheme_name) + "'");
  }
  if (fields.size() != expected_fields) {
    return Status::InvalidArgument(
        "EPC URI for scheme '" + std::string(scheme_name) + "' needs " +
        std::to_string(expected_fields) + " dot-separated fields, got " +
        std::to_string(fields.size()));
  }

  int company_digits = static_cast<int>(fields[0].size());
  RFIDCEP_ASSIGN_OR_RETURN(int partition,
                           PartitionForCompanyDigits(scheme, company_digits));
  RFIDCEP_ASSIGN_OR_RETURN(PartitionRow row, PartitionFor(scheme, partition));
  RFIDCEP_ASSIGN_OR_RETURN(
      uint64_t company,
      ParseDecimalField("company prefix", fields[0], row.company_digits));
  RFIDCEP_ASSIGN_OR_RETURN(
      uint64_t reference,
      ParseDecimalField("reference", fields[1], row.reference_digits));

  switch (scheme) {
    case Scheme::kSgtin96: {
      RFIDCEP_ASSIGN_OR_RETURN(uint64_t serial,
                               ParseDecimalField("serial", fields[2], -1));
      return MakeSgtin(/*filter=*/0, company, company_digits, reference,
                       serial);
    }
    case Scheme::kSscc96:
      return MakeSscc(/*filter=*/0, company, company_digits, reference);
    case Scheme::kSgln96: {
      RFIDCEP_ASSIGN_OR_RETURN(uint64_t extension,
                               ParseDecimalField("extension", fields[2], -1));
      return MakeSgln(/*filter=*/0, company, company_digits, reference,
                      extension);
    }
  }
  return Status::Internal("unknown scheme");
}

std::string Epc::ToUri() const {
  if (scheme_ == Scheme::kGid96) {
    return "urn:epc:id:gid:" + std::to_string(company_prefix_) + "." +
           std::to_string(reference_) + "." + std::to_string(serial_);
  }
  Result<PartitionRow> row = PartitionFor(scheme_, partition_);
  std::string out = "urn:epc:id:";
  out += SchemeName(scheme_);
  out += ':';
  out += PadDecimal(company_prefix_, row->company_digits);
  out += '.';
  out += PadDecimal(reference_, row->reference_digits);
  if (scheme_ != Scheme::kSscc96) {
    out += '.';
    out += std::to_string(serial_);
  }
  return out;
}

EpcBits Epc::ToBinary() const {
  EpcBits bits;
  BitWriter writer(&bits);
  if (scheme_ == Scheme::kGid96) {
    writer.Write(HeaderFor(scheme_), 8);
    writer.Write(company_prefix_, kGidManagerBits);
    writer.Write(reference_, kGidClassBits);
    writer.Write(serial_, kGidSerialBits);
    return bits;
  }
  Result<PartitionRow> row = PartitionFor(scheme_, partition_);
  writer.Write(HeaderFor(scheme_), 8);
  writer.Write(static_cast<uint64_t>(filter_), 3);
  writer.Write(static_cast<uint64_t>(partition_), 3);
  writer.Write(company_prefix_, row->company_bits);
  writer.Write(reference_, row->reference_bits);
  switch (scheme_) {
    case Scheme::kSgtin96:
      writer.Write(serial_, kSgtinSerialBits);
      break;
    case Scheme::kSscc96:
      writer.Write(0, kSsccPaddingBits);
      break;
    case Scheme::kSgln96:
      writer.Write(serial_, kSgln96ExtensionBits);
      break;
  }
  return bits;
}

Result<Epc> Epc::FromBinary(const EpcBits& bits) {
  BitReader reader(bits);
  uint8_t header = static_cast<uint8_t>(reader.Read(8));
  Scheme scheme;
  switch (header) {
    case kHeaderSgtin96:
      scheme = Scheme::kSgtin96;
      break;
    case kHeaderSscc96:
      scheme = Scheme::kSscc96;
      break;
    case kHeaderSgln96:
      scheme = Scheme::kSgln96;
      break;
    case kHeaderGid96: {
      uint64_t manager = reader.Read(kGidManagerBits);
      uint64_t object_class = reader.Read(kGidClassBits);
      uint64_t serial = reader.Read(kGidSerialBits);
      return MakeGid(manager, object_class, serial);
    }
    default:
      return Status::InvalidArgument("unknown EPC binary header " +
                                     std::to_string(header));
  }
  int filter = static_cast<int>(reader.Read(3));
  int partition = static_cast<int>(reader.Read(3));
  RFIDCEP_ASSIGN_OR_RETURN(PartitionRow row, PartitionFor(scheme, partition));
  uint64_t company = reader.Read(row.company_bits);
  uint64_t reference = reader.Read(row.reference_bits);
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("company prefix", company, row.company_digits));
  RFIDCEP_RETURN_IF_ERROR(
      CheckDigits("reference", reference, row.reference_digits));
  uint64_t trailing = reader.Read(TrailingBits(scheme));
  switch (scheme) {
    case Scheme::kSgtin96:
      return MakeSgtin(filter, company, row.company_digits, reference,
                       trailing);
    case Scheme::kSscc96:
      return MakeSscc(filter, company, row.company_digits, reference);
    case Scheme::kSgln96:
      return MakeSgln(filter, company, row.company_digits, reference,
                      trailing);
  }
  return Status::Internal("unknown scheme");
}

std::string Epc::ClassKey() const {
  if (scheme_ == Scheme::kGid96) {
    return "gid:" + std::to_string(company_prefix_) + "." +
           std::to_string(reference_);
  }
  Result<PartitionRow> row = PartitionFor(scheme_, partition_);
  std::string out(SchemeName(scheme_));
  out += ':';
  out += PadDecimal(company_prefix_, row->company_digits);
  out += '.';
  out += PadDecimal(reference_, row->reference_digits);
  return out;
}

}  // namespace rfidcep::epc
