#!/usr/bin/env python3
"""Bench regression guard: compare a fig9_scalability run against the seed.

Reads the JSON written by `fig9_scalability --json-out=FILE` and the
checked-in baseline (BENCH_rfidcep.json), matches every `events`-series
row to the closest seed Fig. 9a point by event count, and fails when
usec/event regresses past --max-ratio (default 2.5x — CI smoke runs are
small and noisy, so the guard catches order-of-magnitude regressions,
not percent-level drift; scripts/run_benches.sh tracks the latter).

    scripts/bench_guard.py --run=fig9-smoke.json \
        [--baseline=BENCH_rfidcep.json] [--max-ratio=2.5]

Exit status: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True,
                        help="JSON from fig9_scalability --json-out")
    parser.add_argument("--baseline",
                        default=os.path.join(
                            os.path.dirname(os.path.dirname(
                                os.path.abspath(__file__))),
                            "BENCH_rfidcep.json"),
                        help="seed baseline (default: repo BENCH_rfidcep.json)")
    parser.add_argument("--max-ratio", type=float, default=2.5,
                        help="fail when usec/event exceeds seed by this factor")
    args = parser.parse_args()

    run = load_json(args.run)
    baseline = load_json(args.baseline)

    seed_points = baseline.get("seed_baseline", {}).get("fig9a_events", [])
    if not seed_points:
        print("bench_guard: baseline has no seed_baseline.fig9a_events",
              file=sys.stderr)
        sys.exit(2)

    rows = [r for r in run.get("rows", []) if r.get("series") == "events"]
    if not rows:
        print("bench_guard: run has no events-series rows (pass "
              "--series=events to fig9_scalability)", file=sys.stderr)
        sys.exit(2)

    failed = False
    print(f"{'events':>10} {'run us/ev':>12} {'seed us/ev':>12} "
          f"{'ratio':>8}  verdict   (seed point)")
    for row in rows:
        events = row["events"]
        # Closest seed point by event count; smoke runs use fewer events
        # than any seed point, which is conservative (per-event cost
        # falls as fixed compile cost amortizes over more events).
        seed = min(seed_points, key=lambda p: abs(p["events"] - events))
        ratio = row["usec_per_event"] / seed["usec_per_event"]
        verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
        failed |= verdict != "ok"
        print(f"{events:>10} {row['usec_per_event']:>12.3f} "
              f"{seed['usec_per_event']:>12.3f} {ratio:>8.2f}  {verdict:<9} "
              f"(events={seed['events']})")

    if failed:
        print(f"bench_guard: usec/event regressed beyond "
              f"{args.max_ratio}x the seed baseline", file=sys.stderr)
        sys.exit(1)
    print("bench_guard: within budget")


if __name__ == "__main__":
    main()
