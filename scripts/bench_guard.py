#!/usr/bin/env python3
"""Bench regression guard: compare a fig9_scalability run against the seed.

Reads the JSON written by `fig9_scalability --json-out=FILE` and the
checked-in baseline (BENCH_rfidcep.json), matches every `events`-series
row to the closest seed Fig. 9a point by event count, and fails when
usec/event regresses past --max-ratio (default 2.5x — CI smoke runs are
small and noisy, so the guard catches order-of-magnitude regressions,
not percent-level drift; scripts/run_benches.sh tracks the latter).

When the run contains `rules`-series rows (the SKU x site rule-set
sweep), the guard gates the rule-set compiler's dispatch scaling: with
two or more compiled points, the max/min usec-per-event ratio across
the sweep must stay at or below --rules-max-ratio (default 2.0 — the
"10k rules costs at most 2x the 500-rule point" contract); with a
single point (the CI smoke runs --rules=2000), it is compared against
the closest committed current.rules.series point at --max-ratio like
an events row. Rows recorded with --compile=off are ignored — they
measure the uncompiled engine on purpose.

When the run contains `actions`-series rows (the FIG9-ACT off/sync/
async sweep), the guard gates the async action pipeline: the async
row's usec/event must stay at or below --actions-max-ratio (default
1.05) times the sync row's — moving action execution off the detection
path must not make the pipeline slower end to end. The gate is skipped
(with a note) when the recording host had a single CPU: the async
worker then has no core to overlap onto and every handoff is pure
scheduling overhead, which measures the host, not the pipeline.

When the run also contains `shards`-series rows, the guard additionally
gates the sharded pipeline: for every (shards, partition) point with a
committed counterpart in current.shards.series, the run's RELATIVE
speedup versus its own shards=1 row must stay at or above
--shards-min-ratio (default 0.9) times the committed speedup_vs_1shard.
Comparing relative speedups, not absolute usec/event, keeps the gate
meaningful across hosts of different speeds and core counts — a
shards=2 point that commits at 0.8x on the recording host fails CI only
when the smoke run drops below 0.72x of ITS serial baseline, i.e. when
the coordination overhead itself regressed.

When the run contains `workload`-series rows (the FIG9-W airport-
baggage sweep), each row is gated at --max-ratio against the committed
current.workload.series point with the same rule_family and closest
event count; a run at the exact committed event count must also
reproduce the committed match count (the generator is seeded, so a
mismatch means detection semantics drifted, not noise).

    scripts/bench_guard.py --run=fig9-smoke.json \
        [--baseline=BENCH_rfidcep.json] [--max-ratio=2.5] \
        [--shards-min-ratio=0.9]

Exit status: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_shards(shard_rows, baseline, min_ratio):
    """Gates shards-series rows against current.shards.series. Returns
    True when every comparable point holds its committed relative
    speedup (see module docstring)."""
    committed = (baseline.get("current", {}).get("shards", {})
                 .get("series", []))
    by_key = {(r["shards"], r.get("partition", "rule")): r
              for r in committed}
    serial = [r for r in shard_rows if r["shards"] == 1]
    if not serial:
        print("bench_guard: shards rows lack the shards=1 baseline "
              "point (fig9_scalability always emits it — pass the "
              "whole series)", file=sys.stderr)
        sys.exit(2)
    serial_usec = min(r["usec_per_event"] for r in serial)
    ok = True
    print(f"{'shards':>10} {'partition':>10} {'run spdup':>10} "
          f"{'committed':>10} {'floor':>8}  verdict")
    for row in shard_rows:
        if row["shards"] == 1:
            continue
        key = (row["shards"], row.get("partition", "rule"))
        base = by_key.get(key)
        if base is None or "speedup_vs_1shard" not in base:
            print(f"{row['shards']:>10} {key[1]:>10} {'-':>10} {'-':>10} "
                  f"{'-':>8}  skipped (no committed point)")
            continue
        speedup = serial_usec / row["usec_per_event"]
        floor = base["speedup_vs_1shard"] * min_ratio
        verdict = "ok" if speedup >= floor else "REGRESSION"
        ok &= verdict == "ok"
        print(f"{row['shards']:>10} {key[1]:>10} {speedup:>10.3f} "
              f"{base['speedup_vs_1shard']:>10.3f} {floor:>8.3f}  "
              f"{verdict}")
    if not ok:
        print("bench_guard: sharded-pipeline relative speedup regressed "
              f"below {min_ratio}x of the committed value", file=sys.stderr)
    return ok


def check_actions(action_rows, max_ratio):
    """Gates actions-series rows: async usec/event <= max_ratio x sync
    (see module docstring). Returns True when the budget holds or the
    gate does not apply."""
    by_mode = {r["actions"]: r for r in action_rows}
    sync = by_mode.get("sync")
    async_ = by_mode.get("async")
    if sync is None or async_ is None:
        print("bench_guard: actions rows lack a sync/async pair; "
              "nothing to gate (run --series=actions without --actions)",
              file=sys.stderr)
        return True
    host_cpus = min(sync.get("host_cpus", 0), async_.get("host_cpus", 0))
    if host_cpus == 1:
        print("actions gate: skipped (single-core host: the async stage "
              "has no core to overlap onto)")
        return True
    ratio = async_["usec_per_event"] / sync["usec_per_event"]
    ok = ratio <= max_ratio
    print(f"actions: sync {sync['usec_per_event']:.3f} us/ev -> async "
          f"{async_['usec_per_event']:.3f} us/ev, ratio {ratio:.3f} "
          f"(budget {max_ratio})  {'ok' if ok else 'REGRESSION'}")
    if not ok:
        print("bench_guard: async action dispatch is slower than inline "
              f"execution (ratio > {max_ratio}) — the pipeline stage is "
              "adding overhead instead of overlapping it", file=sys.stderr)
    return ok


def check_rules(rules_rows, baseline, max_ratio, rules_max_ratio):
    """Gates rules-series rows (see module docstring). Returns True when
    the compiled sweep's dispatch scaling holds its budget."""
    rows = [r for r in rules_rows if r.get("compile", "full") != "off"]
    if not rows:
        print("bench_guard: rules rows all ran with --compile=off; "
              "nothing to gate", file=sys.stderr)
        return True
    if len(rows) >= 2:
        lo = min(rows, key=lambda r: r["usec_per_event"])
        hi = max(rows, key=lambda r: r["usec_per_event"])
        ratio = hi["usec_per_event"] / lo["usec_per_event"]
        ok = ratio <= rules_max_ratio
        print(f"rules sweep: {lo['rules']} rules at "
              f"{lo['usec_per_event']:.3f} us/ev -> {hi['rules']} rules "
              f"at {hi['usec_per_event']:.3f} us/ev, ratio {ratio:.2f} "
              f"(budget {rules_max_ratio})  "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            print("bench_guard: dispatch cost no longer scales with "
                  "matching rules — the rule-set compiler's contract "
                  f"(max/min <= {rules_max_ratio}) is broken",
                  file=sys.stderr)
        return ok
    committed = (baseline.get("current", {}).get("rules", {})
                 .get("series", []))
    if not committed:
        print("bench_guard: baseline has no current.rules.series; "
              "skipping the single-point rules gate", file=sys.stderr)
        return True
    row = rows[0]
    base = min(committed, key=lambda p: abs(p["rules"] - row["rules"]))
    ratio = row["usec_per_event"] / base["usec_per_event"]
    ok = ratio <= max_ratio
    print(f"rules smoke: {row['rules']} rules at "
          f"{row['usec_per_event']:.3f} us/ev vs committed "
          f"{base['rules']} rules at {base['usec_per_event']:.3f} us/ev, "
          f"ratio {ratio:.2f} (budget {max_ratio})  "
          f"{'ok' if ok else 'REGRESSION'}")
    if not ok:
        print("bench_guard: rules-series usec/event regressed past "
              f"--max-ratio={max_ratio}", file=sys.stderr)
    return ok


def check_workload(workload_rows, baseline, max_ratio):
    """Gates workload-series rows (the FIG9-W airport-baggage sweep)
    against current.workload.series: each (rule_family, closest events)
    point must hold usec/event within max_ratio of the committed value,
    and — because the workload generator is seeded — a run at the exact
    committed event count must reproduce its match count bit-for-bit
    (an out-of-order-tolerance semantic canary, not a perf gate).
    Returns True when every comparable point holds."""
    committed = (baseline.get("current", {}).get("workload", {})
                 .get("series", []))
    if not committed:
        print("bench_guard: baseline has no current.workload.series; "
              "skipping the workload gate", file=sys.stderr)
        return True
    by_family = {}
    for point in committed:
        by_family.setdefault(point["rule_family"], []).append(point)
    ok = True
    print(f"{'events':>10} {'order':>16} {'run us/ev':>10} "
          f"{'committed':>10} {'ratio':>6}  verdict")
    for row in workload_rows:
        family = row.get("rule_family", "")
        points = by_family.get(family)
        if points is None:
            print(f"{row['events']:>10} {family:>16} "
                  f"{row['usec_per_event']:>10.3f} {'-':>10} {'-':>6}  "
                  "skipped (no committed family)")
            continue
        base = min(points, key=lambda p: abs(p["events"] - row["events"]))
        ratio = row["usec_per_event"] / base["usec_per_event"]
        verdict = "ok" if ratio <= max_ratio else "REGRESSION"
        if (base["events"] == row["events"] and "matches" in base
                and base["matches"] != row.get("matches")):
            verdict = "DIVERGED"
        ok &= verdict == "ok"
        print(f"{row['events']:>10} {family:>16} "
              f"{row['usec_per_event']:>10.3f} "
              f"{base['usec_per_event']:>10.3f} {ratio:>6.2f}  {verdict}")
        if verdict == "DIVERGED":
            print(f"bench_guard: {family} at {row['events']} events "
                  f"produced {row.get('matches')} matches, committed "
                  f"{base['matches']} — the seeded workload is "
                  "deterministic, so detection semantics changed",
                  file=sys.stderr)
    if not ok:
        print("bench_guard: workload-series gate failed "
              f"(--max-ratio={max_ratio})", file=sys.stderr)
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True,
                        help="JSON from fig9_scalability --json-out")
    parser.add_argument("--baseline",
                        default=os.path.join(
                            os.path.dirname(os.path.dirname(
                                os.path.abspath(__file__))),
                            "BENCH_rfidcep.json"),
                        help="seed baseline (default: repo BENCH_rfidcep.json)")
    parser.add_argument("--max-ratio", type=float, default=2.5,
                        help="fail when usec/event exceeds seed by this factor")
    parser.add_argument("--shards-min-ratio", type=float, default=0.9,
                        help="fail when a shards point's relative speedup "
                             "falls below this fraction of the committed "
                             "speedup_vs_1shard")
    parser.add_argument("--rules-max-ratio", type=float, default=2.0,
                        help="fail when the rules sweep's max/min "
                             "usec/event ratio exceeds this (dispatch must "
                             "scale with matching rules, not rule count)")
    parser.add_argument("--actions-max-ratio", type=float, default=1.05,
                        help="fail when the async actions row's usec/event "
                             "exceeds the sync row's by this factor "
                             "(skipped on single-core hosts)")
    args = parser.parse_args()

    run = load_json(args.run)
    baseline = load_json(args.baseline)

    seed_points = baseline.get("seed_baseline", {}).get("fig9a_events", [])
    if not seed_points:
        print("bench_guard: baseline has no seed_baseline.fig9a_events",
              file=sys.stderr)
        sys.exit(2)

    rows = [r for r in run.get("rows", []) if r.get("series") == "events"]
    shard_rows = [r for r in run.get("rows", [])
                  if r.get("series") == "shards"]
    rules_rows = [r for r in run.get("rows", [])
                  if r.get("series") == "rules"]
    action_rows = [r for r in run.get("rows", [])
                   if r.get("series") == "actions"]
    workload_rows = [r for r in run.get("rows", [])
                     if r.get("series") == "workload"]
    if (not rows and not shard_rows and not rules_rows and not action_rows
            and not workload_rows):
        print("bench_guard: run has no events-, rules-, shards-, "
              "actions- or workload-series rows (pass --series=... to "
              "fig9_scalability)", file=sys.stderr)
        sys.exit(2)

    failed = False
    if rows:
        print(f"{'events':>10} {'run us/ev':>12} {'seed us/ev':>12} "
              f"{'ratio':>8}  verdict   (seed point)")
    for row in rows:
        events = row["events"]
        # Closest seed point by event count; smoke runs use fewer events
        # than any seed point, which is conservative (per-event cost
        # falls as fixed compile cost amortizes over more events).
        seed = min(seed_points, key=lambda p: abs(p["events"] - events))
        ratio = row["usec_per_event"] / seed["usec_per_event"]
        verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
        failed |= verdict != "ok"
        print(f"{events:>10} {row['usec_per_event']:>12.3f} "
              f"{seed['usec_per_event']:>12.3f} {ratio:>8.2f}  {verdict:<9} "
              f"(events={seed['events']})")

    if rules_rows:
        failed |= not check_rules(rules_rows, baseline, args.max_ratio,
                                  args.rules_max_ratio)

    if action_rows:
        failed |= not check_actions(action_rows, args.actions_max_ratio)

    if shard_rows:
        failed |= not check_shards(shard_rows, baseline,
                                   args.shards_min_ratio)

    if workload_rows:
        failed |= not check_workload(workload_rows, baseline,
                                     args.max_ratio)

    if failed:
        print("bench_guard: performance regressed past budget "
              f"(--max-ratio={args.max_ratio}, "
              f"--shards-min-ratio={args.shards_min_ratio})",
              file=sys.stderr)
        sys.exit(1)
    print("bench_guard: within budget")


if __name__ == "__main__":
    main()
