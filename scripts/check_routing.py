#!/usr/bin/env python3
"""Asserts data-partition hash routing is balanced (~1/N per replica).

Reads a Prometheus exposition written by `fig9_scalability
--metrics-out=FILE` (or any engine ExportMetrics() dump), collects the
per-shard `shard_routed_total{shard="..."}` counters, and checks that
the `--replicas=N` largest ones — the keyed replicas; the residual
shard, when present, only receives its literal-reader vocabulary and is
expected to be small — each hold between --min-share and --max-share of
their combined total. FNV-1a over thousands of distinct EPCs lands well
inside [0.5/N, 2/N]; a broken hash or a routing bug that pins keys to
one replica does not.

    scripts/check_routing.py METRICS_FILE --replicas=N \
        [--min-share=0.5] [--max-share=2.0]

Exit status: 0 balanced, 1 imbalanced, 2 bad input.
"""

import argparse
import re
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="Prometheus exposition file")
    parser.add_argument("--replicas", type=int, required=True,
                        help="expected keyed-replica count N")
    parser.add_argument("--min-share", type=float, default=0.5,
                        help="minimum replica share as a multiple of 1/N")
    parser.add_argument("--max-share", type=float, default=2.0,
                        help="maximum replica share as a multiple of 1/N")
    args = parser.parse_args()

    try:
        with open(args.metrics) as f:
            text = f.read()
    except OSError as e:
        print(f"check_routing: cannot read {args.metrics}: {e}",
              file=sys.stderr)
        sys.exit(2)

    routed = {}
    for m in re.finditer(
            r'^shard_routed_total\{shard="(\d+)"\}\s+(\d+)\s*$',
            text, re.MULTILINE):
        routed[int(m.group(1))] = int(m.group(2))
    if len(routed) < args.replicas:
        print(f"check_routing: found {len(routed)} shard_routed_total "
              f"counters, expected at least {args.replicas} (was the run "
              "instrumented and sharded?)", file=sys.stderr)
        sys.exit(2)

    replicas = sorted(routed.values(), reverse=True)[:args.replicas]
    total = sum(replicas)
    if total == 0:
        print("check_routing: replicas received no observations",
              file=sys.stderr)
        sys.exit(1)

    fair = total / args.replicas
    ok = True
    print(f"{'replica rank':>12} {'routed':>10} {'share of fair':>14}")
    for rank, count in enumerate(replicas):
        share = count / fair
        verdict = args.min_share <= share <= args.max_share
        ok &= verdict
        print(f"{rank:>12} {count:>10} {share:>13.2f}x"
              f"{'' if verdict else '  IMBALANCED'}")
    if not ok:
        print(f"check_routing: replica share outside "
              f"[{args.min_share}, {args.max_share}]x of 1/{args.replicas}",
              file=sys.stderr)
        sys.exit(1)
    print(f"check_routing: {args.replicas} replicas balanced "
          f"({total} observations routed)")


if __name__ == "__main__":
    main()
