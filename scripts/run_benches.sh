#!/usr/bin/env bash
# Runs the perf suite backing BENCH_rfidcep.json:
#
#   * bench/fig9_scalability --series=events  (paper Fig. 9a reproduction)
#   * bench/bench_bindings                    (hot-path microbenchmarks +
#                                              allocs_per_iter counters)
#
# Usage: scripts/run_benches.sh [build-dir]
#
# Builds Release into `build-dir` (default: build-bench), reruns both
# benchmarks, and rewrites BENCH_rfidcep.json at the repo root. The
# "seed" series in the JSON is the recorded pre-optimization baseline
# (commit 65bc83f built Release on the same machine class); it is kept
# verbatim so the speedup claim stays auditable.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-bench}"
OUT="$REPO_ROOT/BENCH_rfidcep.json"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target fig9_scalability bench_bindings \
  >/dev/null

FIG9_TXT="$("$BUILD_DIR/bench/fig9_scalability" --series=events)"
echo "$FIG9_TXT"
BINDINGS_JSON="$("$BUILD_DIR/bench/bench_bindings" \
  --benchmark_format=json --benchmark_min_time=0.2 2>/dev/null)"

FIG9_TXT="$FIG9_TXT" BINDINGS_JSON="$BINDINGS_JSON" python3 - "$OUT" <<'EOF'
import json, os, sys

# Pre-optimization baseline: seed commit, Release, same harness settings.
SEED_FIG9A = [
    {"events": 50000,  "total_ms": 912.8,  "usec_per_event": 18.262},
    {"events": 100000, "total_ms": 2447.9, "usec_per_event": 24.469},
    {"events": 150000, "total_ms": 3689.3, "usec_per_event": 24.582},
    {"events": 200000, "total_ms": 5286.6, "usec_per_event": 26.448},
    {"events": 250000, "total_ms": 6409.4, "usec_per_event": 25.655},
]

current = []
for line in os.environ["FIG9_TXT"].splitlines():
    parts = line.split()
    if len(parts) == 5 and parts[0].isdigit():
        current.append({
            "events": int(parts[0]),
            "total_ms": float(parts[1]),
            "usec_per_event": float(parts[2]),
            "matches": int(parts[3]),
            "pseudo": int(parts[4]),
        })

for seed, cur in zip(SEED_FIG9A, current):
    assert seed["events"] == cur["events"]
    cur["speedup_vs_seed"] = round(
        seed["usec_per_event"] / cur["usec_per_event"], 3)

micro = []
for run in json.loads(os.environ["BINDINGS_JSON"]).get("benchmarks", []):
    micro.append({
        "name": run["name"],
        "cpu_ns": round(run["cpu_time"], 2),
        "allocs_per_iter": run.get("allocs_per_iter", 0.0),
    })

doc = {
    "benchmark": "rfidcep Fig. 9a (events series) + binding microbenchmarks",
    "harness": "bench/fig9_scalability --series=events, Release build",
    "units": {"fig9a": "usec per primitive event", "micro": "ns CPU"},
    "seed_baseline": {
        "commit": "65bc83f",
        "fig9a_events": SEED_FIG9A,
    },
    "current": {
        "fig9a_events": current,
        "micro": micro,
    },
    "claims": [
        "usec/event is >=20% lower than the seed at every Fig. 9a point",
        "match and pseudo-event counts are identical to the seed "
        "(behavior-preserving optimization)",
        "allocs_per_iter is 0 for BM_PairingProbe, BM_ComputeJoinKey and "
        "BM_UnifiesWith: the per-event pairing path performs no heap "
        "allocation and builds no std::string keys",
    ],
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[1]}")
EOF
