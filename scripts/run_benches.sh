#!/usr/bin/env bash
# Runs the perf suite backing BENCH_rfidcep.json:
#
#   * bench/fig9_scalability --series=events  (paper Fig. 9a reproduction)
#   * bench/fig9_scalability --series=rules   (SKU x site rule-set sweep,
#                                              500 -> 10,000 rules)
#   * bench/fig9_scalability --series=shards  (sharded pipeline sweep)
#   * bench/bench_bindings                    (hot-path microbenchmarks +
#                                              allocs_per_iter counters)
#
# Usage: scripts/run_benches.sh [build-dir]
#
# Builds Release into `build-dir` (default: build-bench), reruns both
# benchmarks, and rewrites BENCH_rfidcep.json at the repo root. The
# "seed" series in the JSON is the recorded pre-optimization baseline
# (commit 65bc83f built Release on the same machine class); it is kept
# verbatim so the speedup claim stays auditable.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-bench}"
OUT="$REPO_ROOT/BENCH_rfidcep.json"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target fig9_scalability bench_bindings \
  >/dev/null

# Single-run wall-clock on a shared host is noisy; repeat each series and
# let the parser keep the fastest sample per point (counts must agree
# across repeats — that part is asserted, not sampled).
FIG9_TXT=""
for _ in 1 2 3; do
  FIG9_TXT+="$("$BUILD_DIR/bench/fig9_scalability" --series=events)"$'\n'
done
echo "$FIG9_TXT"
# Rules sweep (FIG9-B): the SKU x site duplicate-rule family against one
# fixed 100k-event stream; the committed series is what the CI smoke's
# single-point rules gate compares against, and its own max/min
# usec/event ratio is the rule-set compiler's scaling contract.
RULES_TXT=""
for _ in 1 2; do
  RULES_TXT+="$("$BUILD_DIR/bench/fig9_scalability" --series=rules)"$'\n'
done
echo "$RULES_TXT"
# Shards sweep in both partition modes: rule-sharded (the rule set is
# split across workers, every observation fans out to each subscribed
# shard) and data-partitioned (keyed rules replicated, the stream split
# by hash(EPC) — engine/sharded_engine.h). The shards=1 serial baseline
# row repeats in both sweeps; the parser keeps the fastest.
SHARDS_TXT=""
for partition in rule data; do
  for _ in 1 2; do
    SHARDS_TXT+="$("$BUILD_DIR/bench/fig9_scalability" --series=shards \
      --shards=2,4 --partition="$partition" \
      --rules=100 --sites=20 --events=100000)"$'\n'
  done
done
echo "$SHARDS_TXT"
BINDINGS_JSON="$("$BUILD_DIR/bench/bench_bindings" \
  --benchmark_format=json --benchmark_min_time=0.2 2>/dev/null)"
HOST_CORES="$(nproc)"

FIG9_TXT="$FIG9_TXT" RULES_TXT="$RULES_TXT" SHARDS_TXT="$SHARDS_TXT" \
  BINDINGS_JSON="$BINDINGS_JSON" \
  HOST_CORES="$HOST_CORES" python3 - "$OUT" <<'EOF'
import json, os, sys

# Pre-optimization baseline: seed commit, Release, same harness settings.
SEED_FIG9A = [
    {"events": 50000,  "total_ms": 912.8,  "usec_per_event": 18.262},
    {"events": 100000, "total_ms": 2447.9, "usec_per_event": 24.469},
    {"events": 150000, "total_ms": 3689.3, "usec_per_event": 24.582},
    {"events": 200000, "total_ms": 5286.6, "usec_per_event": 26.448},
    {"events": 250000, "total_ms": 6409.4, "usec_per_event": 25.655},
]

def parse_rows(text, key):
    """Parses 5-column data rows, keeping the fastest repeat per key and
    asserting the count columns agree across repeats."""
    best = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) != 5 or not parts[0].isdigit():
            continue
        row = {
            key: int(parts[0]),
            "total_ms": float(parts[1]),
            "usec_per_event": float(parts[2]),
            "counts": (int(parts[3]), int(parts[4])),
        }
        prev = best.get(row[key])
        if prev is not None:
            assert prev["counts"] == row["counts"], (prev, row)
        if prev is None or row["total_ms"] < prev["total_ms"]:
            best[row[key]] = row
    return [best[k] for k in sorted(best)]

def parse_shards_rows(text):
    """Parses the 6-column FIG9-S rows (shards, partition, total_ms,
    usec/event, matches, fired), keyed by (shards, engaged partition).
    Counts must agree across every repeat AND both modes: the data-
    partitioned pipeline replays the rule-sharded/serial results."""
    best = {}
    counts = None
    for line in text.splitlines():
        parts = line.split()
        if len(parts) != 6 or not parts[0].isdigit():
            continue
        assert parts[1] in ("rule", "data"), line
        row = {
            "shards": int(parts[0]),
            "partition": parts[1],
            "total_ms": float(parts[2]),
            "usec_per_event": float(parts[3]),
            "counts": (int(parts[4]), int(parts[5])),
        }
        if counts is None:
            counts = row["counts"]
        assert counts == row["counts"], (counts, row)
        k = (row["shards"], row["partition"])
        if k not in best or row["total_ms"] < best[k]["total_ms"]:
            best[k] = row
    return [best[k] for k in sorted(best)]

current = []
for row in parse_rows(os.environ["FIG9_TXT"], "events"):
    current.append({
        "events": row["events"],
        "total_ms": row["total_ms"],
        "usec_per_event": row["usec_per_event"],
        "matches": row["counts"][0],
        "pseudo": row["counts"][1],
    })

for seed, cur in zip(SEED_FIG9A, current):
    assert seed["events"] == cur["events"]
    cur["speedup_vs_seed"] = round(
        seed["usec_per_event"] / cur["usec_per_event"], 3)

rules = []
for row in parse_rows(os.environ["RULES_TXT"], "rules"):
    rules.append({
        "rules": row["rules"],
        "total_ms": row["total_ms"],
        "usec_per_event": row["usec_per_event"],
        "matches": row["counts"][0],
        "pseudo": row["counts"][1],
    })
assert rules, "rules series missing"
rules_ratio = round(
    max(r["usec_per_event"] for r in rules) /
    min(r["usec_per_event"] for r in rules), 3)

shards = []
for row in parse_shards_rows(os.environ["SHARDS_TXT"]):
    shards.append({
        "shards": row["shards"],
        "partition": row["partition"],
        "total_ms": row["total_ms"],
        "usec_per_event": row["usec_per_event"],
        "matches": row["counts"][0],
        "rules_fired": row["counts"][1],
    })
assert shards and shards[0]["shards"] == 1, "shards series missing"
assert any(r["partition"] == "data" for r in shards), \
    "data-partitioned sweep missing (generated rules have keyed families)"
for row in shards:
    # Determinism contract: every shard count, in both partition modes,
    # reproduces serial results (parse_shards_rows also asserts counts).
    assert row["matches"] == shards[0]["matches"], row
    assert row["rules_fired"] == shards[0]["rules_fired"], row
    row["speedup_vs_1shard"] = round(
        shards[0]["usec_per_event"] / row["usec_per_event"], 3)

micro = []
for run in json.loads(os.environ["BINDINGS_JSON"]).get("benchmarks", []):
    micro.append({
        "name": run["name"],
        "cpu_ns": round(run["cpu_time"], 2),
        "allocs_per_iter": run.get("allocs_per_iter", 0.0),
    })

min_speedup = min(c["speedup_vs_seed"] for c in current)

doc = {
    "benchmark": "rfidcep Fig. 9a (events series) + binding microbenchmarks",
    "harness": "bench/fig9_scalability, Release build; fastest of 3 "
               "repeats per events point, fastest of 2 per rules and "
               "shards point",
    "units": {"fig9a": "usec per primitive event", "micro": "ns CPU"},
    "seed_baseline": {
        "commit": "65bc83f",
        "fig9a_events": SEED_FIG9A,
    },
    "current": {
        "fig9a_events": current,
        "rules": {
            "workload": "sku_site rule family (one duplicate-detection "
                        "rule per (site, SKU) pair), 20 sites x 500 SKUs, "
                        "one fixed 100000-event stream, batch=1024, "
                        "rule-set compiler on (--compile=full)",
            "host_cores": int(os.environ["HOST_CORES"]),
            "usec_ratio_max_vs_min": rules_ratio,
            "series": rules,
        },
        "shards": {
            "workload": "100 rules over 20 sites, 100000 events, batch=1024",
            "host_cores": int(os.environ["HOST_CORES"]),
            "note": "each point records the partition mode the engine "
                    "engaged: rule = rule set split across workers, data "
                    "= keyed rules replicated with the stream split by "
                    "hash(EPC) plus one residual shard for cross-object "
                    "rules. Wall-clock speedup requires >= `shards` "
                    "physical cores; on a single-core host the sweep "
                    "only audits the determinism contract (identical "
                    "matches and fired counts at every shard count in "
                    "both modes) and the relative cost of the two "
                    "coordination strategies",
            "series": shards,
        },
        "micro": micro,
    },
    "claims": [
        "usec/event is lower than the seed at every Fig. 9a point "
        f"(min speedup {min_speedup:.2f}x in this run)",
        "match and pseudo-event counts are identical to the seed "
        "(behavior-preserving optimization)",
        "allocs_per_iter is 0 for BM_PairingProbe, BM_ComputeJoinKey and "
        "BM_UnifiesWith: the per-event pairing path performs no heap "
        "allocation and builds no std::string keys",
        "the sharded pipeline reproduces serial matches and fired counts "
        "exactly at every shard count and in both partition modes "
        "(see current.shards.series)",
        "data partitioning cuts per-observation coordination versus rule "
        "sharding at the same shard count (one routed batch per ring "
        "instead of a per-shard fan-out of every observation)",
        "per-event dispatch cost scales with the rules an observation "
        "can match, not the rule-set size: 10,000 rules cost at most "
        f"{rules_ratio:.2f}x the cheapest rules-sweep point "
        "(see current.rules.series; budget 2.0)",
    ],
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[1]}")
EOF
