#!/usr/bin/env bash
# Replay a divergence dumped by tests/property/differential_fuzz_test.
#
#   scripts/fuzz_repro.sh CASE.rules CASE.trace [CASE.rewrites] [BUILD_DIR]
#
# Runs the full differential check (reference interpreter vs serial,
# sharded x2/x4, batch-split, and incremental AdvanceTo executions) over
# exactly that rules/trace pair, then replays it through the engine with
# examples/trace_replay for a human-readable account of what fired. A
# third .rewrites argument (dumped by the metamorphic axis) is staged
# alongside the pair, so CorpusReplays also re-applies the recorded
# rewrite chain and re-checks original vs rewritten agreement. A fixed
# case is a candidate for tests/property/corpus/ — copy the files there
# with a comment header explaining the bug.
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 CASE.rules CASE.trace [CASE.rewrites] [BUILD_DIR]" >&2
  exit 2
fi

RULES="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
TRACE="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# Optional third positional: a .rewrites chain. Anything else in that
# slot is the build directory (the pre-metamorphic calling convention).
REWRITES=""
BUILD_DIR="$REPO_ROOT/build"
if [[ $# -ge 3 ]]; then
  if [[ "$3" == *.rewrites ]]; then
    REWRITES="$(cd "$(dirname "$3")" && pwd)/$(basename "$3")"
    BUILD_DIR="${4:-$REPO_ROOT/build}"
  else
    BUILD_DIR="$3"
  fi
fi
FUZZ_BIN="$BUILD_DIR/tests/differential_fuzz_test"
REPLAY_BIN="$BUILD_DIR/examples/trace_replay"

for bin in "$FUZZ_BIN" "$REPLAY_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B \"$BUILD_DIR\" -S \"$REPO_ROOT\" && cmake --build \"$BUILD_DIR\" -j)" >&2
    exit 1
  fi
done

# Stage the case as a one-case corpus and run the differential replay.
STAGE="$(mktemp -d)"
trap 'rm -rf "$STAGE"' EXIT
cp "$RULES" "$STAGE/repro.rules"
cp "$TRACE" "$STAGE/repro.trace"
if [[ -n "$REWRITES" ]]; then
  cp "$REWRITES" "$STAGE/repro.rewrites"
  echo "== rewrite chain"
  grep -v '^#' "$REWRITES" || true
  echo
fi

echo "== differential replay (reference vs serial/sharded/batched/incremental)"
# Capture the verdict but keep going: the engine replay below is most
# useful precisely when the differential check diverges.
DIFF_STATUS=0
RFIDCEP_CORPUS_DIR="$STAGE" "$FUZZ_BIN" \
  --gtest_filter='DifferentialFuzz.CorpusReplays' || DIFF_STATUS=$?

echo
echo "== engine replay"
# Corpus files carry '#' comment headers the rule parser does not accept.
grep -v '^#' "$RULES" > "$STAGE/replay.rules"
"$REPLAY_BIN" --rules="$STAGE/replay.rules" --trace="$TRACE"

echo
if [[ "$DIFF_STATUS" -ne 0 ]]; then
  echo "DIVERGENCE: differential replay failed (exit $DIFF_STATUS)" >&2
  exit 1
fi
echo "OK: all executions agree"
