#!/usr/bin/env python3
"""rfidcepd end-to-end smoke: stream, SIGTERM, restart, reconcile.

Speaks the daemon's binary protocol (docs/server.md) from stock Python:
frames are u32 length + u32 zlib CRC-32 + payload, little-endian.

Two runs over the same generated trace:

  1. Uninterrupted: launch rfidcepd, stream every batch, flush, read the
     tenant's stats reply. This is the oracle.
  2. Interrupted: fresh state dir, stream the first half (every frame
     individually acknowledged), SIGTERM the daemon (it checkpoints and
     exits 0), relaunch over the same state dir with a *different shard
     count*, stream the rest, flush, read stats.

The interrupted run's final stats must equal the oracle's exactly —
observations, matches, rules fired, SQL actions, per-rule fired counts —
proving the checkpoint/restore lifecycle loses nothing and repeats
nothing. The restarted daemon's /metrics and /healthz are scraped too.

Usage: scripts/server_smoke.py --bin=build/src/server/rfidcepd \
           [--events=20000] [--workdir=DIR]
"""

import argparse
import os
import shutil
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time
import urllib.request
import zlib

MAGIC = 0x50454352
VERSION = 1

T_BATCH, T_ADVANCE, T_FLUSH, T_STATS = 1, 2, 3, 4
T_ACK, T_ERROR, T_STATS_REPLY = 0x80, 0x81, 0x82

RULES = """
  CREATE RULE loc, location update rule
  ON observation(r, o, t)
  IF true
  DO INSERT INTO OBJECTLOCATION VALUES (o, r, t, "UC")

  CREATE RULE dup, duplicate read rule
  ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
  IF true
  DO raise alarm
"""


def frame(ftype, body=b""):
    payload = bytes([ftype]) + body
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def encode_batch(batch):
    body = struct.pack("<I", len(batch))
    for reader, obj, ts in batch:
        reader = reader.encode()
        obj = obj.encode()
        body += struct.pack("<H", len(reader)) + reader
        body += struct.pack("<H", len(obj)) + obj
        body += struct.pack("<q", ts)
    return frame(T_BATCH, body)


class Client:
    def __init__(self, port, tenant):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.buf = b""
        name = tenant.encode()
        self.sock.sendall(struct.pack("<IHH", MAGIC, VERSION, len(name)) + name)
        ftype, _ = self.read_frame()
        assert ftype == T_ACK, f"hello rejected: frame type {ftype:#x}"

    def read_frame(self):
        while True:
            if len(self.buf) >= 8:
                length, crc = struct.unpack_from("<II", self.buf)
                if len(self.buf) >= 8 + length:
                    payload = self.buf[8 : 8 + length]
                    self.buf = self.buf[8 + length :]
                    assert zlib.crc32(payload) == crc, "frame CRC mismatch"
                    return payload[0], payload[1:]
            chunk = self.sock.recv(65536)
            if not chunk:
                raise EOFError("server closed connection")
            self.buf += chunk

    def roundtrip(self, encoded):
        self.sock.sendall(encoded)
        ftype, body = self.read_frame()
        if ftype == T_ERROR:
            code = struct.unpack_from("<I", body)[0]
            mlen = struct.unpack_from("<I", body, 4)[0]
            raise RuntimeError(
                f"server error {code}: {body[8:8 + mlen].decode()}")
        assert ftype == T_ACK, f"expected ack, got {ftype:#x}"
        return struct.unpack("<Q", body)[0]

    def stats(self):
        self.sock.sendall(frame(T_STATS))
        ftype, body = self.read_frame()
        assert ftype == T_STATS_REPLY, f"expected stats, got {ftype:#x}"
        obs, matches, fired, sql, procs = struct.unpack_from("<5Q", body)
        out = {"observations": obs, "matches": matches, "rules_fired": fired,
               "sql_actions": sql, "procedures": procs}
        count = struct.unpack_from("<I", body, 40)[0]
        pos = 44
        for _ in range(count):
            (rlen,) = struct.unpack_from("<H", body, pos)
            rule = body[pos + 2 : pos + 2 + rlen].decode()
            (n,) = struct.unpack_from("<Q", body, pos + 2 + rlen)
            out[f"fired[{rule}]"] = n
            pos += 2 + rlen + 8
        return out

    def close(self):
        self.sock.close()


def make_trace(events):
    # Same shape as tests/server/server_test.cc: (reader, object) pairs
    # recur every 2.5s, inside dup's 5-second window.
    return [
        (f"dock{i % 5}", "hot" if i % 7 == 0 else f"obj{i % 5}",
         i * 500_000)
        for i in range(events)
    ]


class Daemon:
    def __init__(self, binary, config, state_dir, workdir):
        self.port_file = os.path.join(workdir, f"ports-{os.urandom(4).hex()}")
        self.proc = subprocess.Popen(
            [binary, f"--config={config}", f"--state-dir={state_dir}",
             "--port=0", "--http-port=0", f"--port-file={self.port_file}"])
        deadline = time.time() + 30
        while not os.path.exists(self.port_file):
            if self.proc.poll() is not None:
                raise RuntimeError(f"rfidcepd exited {self.proc.returncode}")
            if time.time() > deadline:
                raise RuntimeError("rfidcepd did not write its port file")
            time.sleep(0.05)
        with open(self.port_file) as f:
            self.port, self.http_port = map(int, f.read().split())

    def sigterm(self):
        self.proc.send_signal(signal.SIGTERM)
        rc = self.proc.wait(timeout=60)
        assert rc == 0, f"rfidcepd exited {rc} on SIGTERM"

    def http_get(self, path):
        url = f"http://127.0.0.1:{self.http_port}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.read().decode()


def write_config(workdir, name, shards):
    rules = os.path.join(workdir, "smoke.rules")
    with open(rules, "w") as f:
        f.write(RULES)
    config = os.path.join(workdir, f"{name}.conf")
    with open(config, "w") as f:
        f.write(f"tenant smoke rules={rules} shards={shards}\n")
    return config


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", required=True, help="path to rfidcepd")
    parser.add_argument("--events", type=int, default=20000)
    parser.add_argument("--batch", type=int, default=200)
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="rfidcepd-smoke-")
    os.makedirs(workdir, exist_ok=True)
    trace = make_trace(args.events)
    batches = [trace[i : i + args.batch]
               for i in range(0, len(trace), args.batch)]

    # Run 1: uninterrupted oracle.
    state_a = os.path.join(workdir, "state-a")
    daemon = Daemon(args.bin, write_config(workdir, "a", shards=1), state_a,
                    workdir)
    client = Client(daemon.port, "smoke")
    for batch in batches:
        client.roundtrip(encode_batch(batch))
    client.roundtrip(frame(T_FLUSH))
    oracle = client.stats()
    client.close()
    daemon.sigterm()
    print(f"oracle: {oracle}")
    assert oracle["observations"] == args.events, oracle
    assert oracle["sql_actions"] > 0 and oracle["matches"] > 0, oracle

    # Run 2: SIGTERM mid-stream, restart on a different shard count.
    state_b = os.path.join(workdir, "state-b")
    daemon = Daemon(args.bin, write_config(workdir, "b1", shards=1), state_b,
                    workdir)
    client = Client(daemon.port, "smoke")
    split = len(batches) // 2
    for batch in batches[:split]:
        client.roundtrip(encode_batch(batch))
    client.close()
    daemon.sigterm()
    print(f"interrupted after {split}/{len(batches)} batches; restarting "
          "with shards=2")

    daemon = Daemon(args.bin, write_config(workdir, "b2", shards=2), state_b,
                    workdir)
    client = Client(daemon.port, "smoke")
    for batch in batches[split:]:
        client.roundtrip(encode_batch(batch))
    client.roundtrip(frame(T_FLUSH))
    recovered = client.stats()
    client.close()
    print(f"recovered: {recovered}")

    health = daemon.http_get("/healthz")
    assert health.strip() == "ok", health
    metrics = daemon.http_get("/metrics")
    for needle in ("rfidcepd_connections_total", "rfidcepd_frames_total",
                   'tenant="smoke"'):
        assert needle in metrics, f"missing {needle!r} in /metrics"
    daemon.sigterm()

    if recovered != oracle:
        diff = {k: (oracle.get(k), recovered.get(k))
                for k in sorted(set(oracle) | set(recovered))
                if oracle.get(k) != recovered.get(k)}
        print(f"FAIL: interrupted run diverged from oracle: {diff}")
        return 1
    print("PASS: SIGTERM/restart run reconciled exactly with the "
          f"uninterrupted run over {args.events} events "
          f"({oracle['matches']} matches, {oracle['sql_actions']} SQL "
          f"actions, {oracle['rules_fired']} firings)")
    if not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
