#!/usr/bin/env bash
# Full local gate: build + ctest three times — plain, ASan+UBSan, TSan.
#
#   scripts/check.sh            # RelWithDebInfo, then ASan+UBSan, then TSan
#   scripts/check.sh --fast     # plain build/test only
#
# The ASan/UBSan pass exists because the detection hot path now works with
# raw SymbolIds, string_views into the reader registry, and hand-rolled
# sorted-vector merges — exactly the kind of code ASan/UBSan pays for.
# The TSan pass covers the sharded pipeline (SPSC rings, doorbells,
# barrier acks) and the lock-free instruments; it runs the tests tagged
# with the TSAN ctest label (rfidcep_test(... TSAN) in tests/CMakeLists.txt)
# since everything else is single-threaded.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_pass() {
  local dir="$1"
  local label="$2"
  shift 2
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S "$REPO_ROOT" "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j >/dev/null
  echo "== ctest $dir${label:+ (-L $label)}"
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" ${label:+-L "$label"})
}

run_pass "$REPO_ROOT/build" "" -DASAN=OFF -DRFIDCEP_TSAN=OFF
if [[ "$FAST" -eq 0 ]]; then
  run_pass "$REPO_ROOT/build-asan" "" -DASAN=ON -DCMAKE_BUILD_TYPE=Debug
  run_pass "$REPO_ROOT/build-tsan" "TSAN" \
    -DRFIDCEP_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
echo "All checks passed."
