#!/usr/bin/env bash
# Full local gate: the same three-config matrix CI runs (ci.yml
# build-test), each in its own build directory so switching configs
# never thrashes a shared cache:
#
#   build/       RelWithDebInfo, plain       (full ctest)
#   build-asan/  Debug + ASan + UBSan        (full ctest)
#   build-tsan/  RelWithDebInfo + TSan       (ctest -L TSAN)
#
#   scripts/check.sh            # all three passes
#   scripts/check.sh --fast     # plain build/test only
#
# When ccache is installed it is wired in as the compiler launcher, so
# the three configs share one object cache across reruns (each config
# hashes differently, but edits rebuild only what changed).
#
# The ASan/UBSan pass exists because the detection hot path works with
# raw SymbolIds, string_views into the reader registry, and hand-rolled
# sorted-vector merges — exactly the kind of code ASan/UBSan pays for.
# The TSan pass covers the sharded pipeline (SPSC rings, doorbells,
# barrier acks), the async action stage, and the lock-free instruments;
# it runs the tests tagged with the TSAN ctest label
# (rfidcep_test(... TSAN) in tests/CMakeLists.txt) since everything
# else is single-threaded.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

CCACHE_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  CCACHE_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_pass() {
  local dir="$1"
  local label="$2"
  shift 2
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S "$REPO_ROOT" ${CCACHE_ARGS[@]+"${CCACHE_ARGS[@]}"} \
    "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j >/dev/null
  echo "== ctest $dir${label:+ (-L $label)}"
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" ${label:+-L "$label"})
}

run_pass "$REPO_ROOT/build" "" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DASAN=OFF -DRFIDCEP_TSAN=OFF
if [[ "$FAST" -eq 0 ]]; then
  run_pass "$REPO_ROOT/build-asan" "" -DASAN=ON -DCMAKE_BUILD_TYPE=Debug
  run_pass "$REPO_ROOT/build-tsan" "TSAN" \
    -DRFIDCEP_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
echo "All checks passed."
