#!/usr/bin/env bash
# Full local gate: build + ctest twice, plain and sanitized.
#
#   scripts/check.sh            # RelWithDebInfo, then ASan+UBSan
#   scripts/check.sh --fast     # plain build/test only
#
# The sanitized pass exists because the detection hot path now works with
# raw SymbolIds, string_views into the reader registry, and hand-rolled
# sorted-vector merges — exactly the kind of code ASan/UBSan pays for.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_pass() {
  local dir="$1"
  shift
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S "$REPO_ROOT" "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j >/dev/null
  echo "== ctest $dir"
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)")
}

run_pass "$REPO_ROOT/build" -DASAN=OFF
if [[ "$FAST" -eq 0 ]]; then
  run_pass "$REPO_ROOT/build-asan" -DASAN=ON -DCMAKE_BUILD_TYPE=Debug
fi
echo "All checks passed."
